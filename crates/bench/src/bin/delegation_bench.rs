//! Emits `BENCH_delegation.json`: drop-all avoidance rate and
//! delegated-rule overhead vs TCAM capacity pressure.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin delegation_bench -- \
//!     [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` runs the smallest scenario on two pressure points — CI
//! uses it to validate the JSON schema without paying for the full
//! sweep. The document is validated against
//! `flowplace.bench.delegation.v1` before it is written; a schema bug
//! fails the run instead of producing a corrupt artifact. The benchmark
//! itself panics if either arm of any cell ends with a failing
//! fail-closed audit, so a delegation safety bug also fails the run.

use std::process::ExitCode;

use flowplace_bench::delegation::{self, DelegationBenchConfig};
use flowplace_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = DelegationBenchConfig::default();
    let mut out_path = String::from("BENCH_delegation.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--smoke" => {
                cfg.smoke = true;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    eprintln!("delegation bench: smoke={}", cfg.smoke);
    let rows = delegation::run_with_progress(&cfg, &mut |msg| eprintln!("  {msg}"));
    print!("{}", delegation::rows_table(&rows));

    let doc = delegation::to_json(&rows);
    if let Err(reason) = report::validate_delegation_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

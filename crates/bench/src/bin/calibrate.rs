//! Capacity calibration helper: probes the feasibility cliff for the
//! experiment configurations (not part of the reproduction itself).
use std::time::Duration;

use flowplace_bench::experiments::default_options;
use flowplace_bench::{build_instance, ScenarioConfig};
use flowplace_core::{Objective, RulePlacer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let ingresses: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let caps: Vec<usize> = args
        .get(2)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or(vec![55]);
    let ns: Vec<usize> = args
        .get(3)
        .map(|s| s.split(',').map(|x| x.parse().unwrap()).collect())
        .unwrap_or(vec![60, 90, 110]);
    for &capacity in &caps {
        for &n in &ns {
            let cfg = ScenarioConfig {
                k,
                ingresses,
                paths_per_ingress: 2,
                rules_per_policy: n,
                shared_rules: 0,
                capacity,
                seed: 7,
            };
            let inst = build_instance(&cfg);
            let out = RulePlacer::new(default_options(Duration::from_secs(60)))
                .place(&inst, Objective::TotalRules)
                .unwrap();
            println!("k={k} ing={ingresses} C={capacity} n={n}: {} obj={:?} in {:?} (vars {}, rows {}, nodes {})",
                out.status, out.objective, out.stats.elapsed, out.stats.variables, out.stats.constraints, out.stats.nodes);
        }
    }
}

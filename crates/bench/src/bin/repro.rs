//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin repro -- [exp1|exp2|exp3|exp4|exp5|exp6|ablate-deps|ablate-sat|all] [--quick]
//! ```
//!
//! Results are printed as ASCII tables and written as CSV files under
//! `results/`.

use std::fs;
use std::path::Path;

use flowplace_bench::{experiments, report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() || which.contains(&"all") {
        vec![
            "exp1",
            "exp2",
            "exp3",
            "exp4",
            "exp5",
            "exp6",
            "ablate-deps",
            "ablate-sat",
        ]
    } else {
        which
    };
    // Quick (smoke-test) runs must not clobber a recorded full run.
    let out_dir = if quick { "results/quick" } else { "results" };
    fs::create_dir_all(out_dir).expect("can create results dir");

    for w in which {
        match w {
            "exp1" => {
                println!("== Experiment 1 (Figures 7/8/9): runtime vs rules per policy ==");
                let rows = experiments::exp1_rules(quick);
                print!("{}", report::solve_rows_table(&rows, "n"));
                write(
                    format!("{out_dir}/exp1_rules.csv"),
                    &report::solve_rows_csv(&rows),
                );
            }
            "exp2" => {
                println!("== Experiment 2 (Figure 10): runtime vs number of paths ==");
                let rows = experiments::exp2_paths(quick);
                print!("{}", report::solve_rows_table(&rows, "paths"));
                write(
                    format!("{out_dir}/exp2_paths.csv"),
                    &report::solve_rows_csv(&rows),
                );
            }
            "exp3" => {
                println!("== Experiment 3 (Table II): capacity vs overhead in rule merging ==");
                let rows = experiments::exp3_merging(quick);
                print!("{}", report::merge_rows_table(&rows));
                write(
                    format!("{out_dir}/exp3_merging.csv"),
                    &report::merge_rows_csv(&rows),
                );
            }
            "exp4" => {
                println!("== Experiment 4 (Figure 11): runtime vs per-switch capacity ==");
                let rows = experiments::exp4_capacity(quick);
                print!("{}", report::solve_rows_table(&rows, "capacity"));
                write(
                    format!("{out_dir}/exp4_capacity.csv"),
                    &report::solve_rows_csv(&rows),
                );
            }
            "exp5" => {
                println!("== Experiment 5: incremental deployment ==");
                let rows = experiments::exp5_incremental(quick);
                print!("{}", report::inc_rows_table(&rows));
                write(
                    format!("{out_dir}/exp5_incremental.csv"),
                    &report::inc_rows_csv(&rows),
                );
            }
            "exp6" => {
                println!("== Rule sharing (§V closing claim): placed rules vs p×r ==");
                let rows = experiments::exp6_sharing(quick);
                print!("{}", report::sharing_rows_table(&rows));
                write(
                    format!("{out_dir}/exp6_sharing.csv"),
                    &report::sharing_rows_csv(&rows),
                );
            }
            "ablate-deps" => {
                println!("== Ablation: Equation 1 dependency encodings ==");
                let rows = experiments::ablate_dependency(quick);
                print!("{}", report::solve_rows_table(&rows, "n"));
                write(
                    format!("{out_dir}/ablate_deps.csv"),
                    &report::solve_rows_csv(&rows),
                );
            }
            "ablate-sat" => {
                println!("== Ablation: ILP vs PB-SAT feasibility ==");
                let rows = experiments::ablate_sat_vs_ilp(quick);
                print!("{}", report::solve_rows_table(&rows, "n"));
                write(
                    format!("{out_dir}/ablate_sat.csv"),
                    &report::solve_rows_csv(&rows),
                );
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                std::process::exit(2);
            }
        }
        println!();
    }
}

fn write(path: impl AsRef<Path>, contents: &str) {
    let path = path.as_ref();
    fs::write(path, contents).expect("can write results file");
    println!("wrote {}", path.display());
}

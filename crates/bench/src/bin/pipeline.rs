//! Emits `BENCH_pipeline.json`: serial vs parallel-pipeline solve times.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin pipeline -- \
//!     [--out PATH] [--threads N] [--samples N] [--time-limit SECS] [--smoke]
//! ```
//!
//! `--smoke` runs a single sample of the smallest scenario under a short
//! budget — CI uses it to validate the JSON schema without paying for
//! the full sweep. The document is validated against
//! `flowplace.bench.pipeline.v1` before it is written; a schema bug
//! fails the run instead of producing a corrupt artifact.

use std::process::ExitCode;
use std::time::Duration;

use flowplace_bench::pipeline::{self, PipelineConfig};
use flowplace_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = PipelineConfig::default();
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--threads" => {
                cfg.threads = parse_num(&take_value(&args, &mut i, "--threads"), "--threads");
            }
            "--samples" => {
                cfg.samples = parse_num(&take_value(&args, &mut i, "--samples"), "--samples");
            }
            "--time-limit" => {
                let secs: usize =
                    parse_num(&take_value(&args, &mut i, "--time-limit"), "--time-limit");
                cfg.time_limit = Duration::from_secs(secs as u64);
            }
            "--smoke" => {
                cfg.smoke = true;
                cfg.samples = 1;
                cfg.time_limit = Duration::from_secs(2);
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if cfg.samples == 0 {
        eprintln!("--samples must be at least 1");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "pipeline bench: threads={} samples={} time_limit={:?} smoke={}",
        cfg.threads, cfg.samples, cfg.time_limit, cfg.smoke
    );
    let rows = pipeline::run(&cfg);
    print!("{}", pipeline::rows_table(&rows));

    let doc = pipeline::to_json(&cfg, &rows);
    if let Err(reason) = report::validate_pipeline_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got {text:?}");
        std::process::exit(2);
    })
}

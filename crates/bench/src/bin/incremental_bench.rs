//! Emits `BENCH_incremental.json`: cold vs warm epoch re-solve times.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin incremental -- \
//!     [--out PATH] [--rounds N] [--smoke]
//! ```
//!
//! `--smoke` runs a short stream on the smallest scenario — CI uses it
//! to validate the JSON schema without paying for the full sweep. The
//! document is validated against `flowplace.bench.incremental.v1`
//! before it is written; a schema bug fails the run instead of
//! producing a corrupt artifact. The benchmark itself asserts that the
//! warm controller stays byte-identical to the cold controller after
//! every epoch, so a divergence also fails the run.

use std::process::ExitCode;

use flowplace_bench::incremental::{self, IncrementalConfig};
use flowplace_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = IncrementalConfig::default();
    let mut out_path = String::from("BENCH_incremental.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--rounds" => {
                cfg.rounds = parse_num(&take_value(&args, &mut i, "--rounds"), "--rounds");
            }
            "--smoke" => {
                cfg.smoke = true;
                cfg.rounds = 3;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if cfg.rounds == 0 {
        eprintln!("--rounds must be at least 1");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "incremental bench: rounds={} smoke={}",
        cfg.rounds, cfg.smoke
    );
    let rows = incremental::run(&cfg);
    print!("{}", incremental::rows_table(&rows));

    let doc = incremental::to_json(&cfg, &rows);
    if let Err(reason) = report::validate_incremental_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag} requires an unsigned integer, got {text:?}");
        std::process::exit(2);
    })
}

//! Emits `BENCH_shard.json`: sharded-controller event throughput and
//! p99 epoch latency vs shard count, with the byte-identity bit per
//! row.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin shard_bench -- \
//!     [--out PATH] [--smoke]
//! ```
//!
//! `--smoke` runs the smallest scenario at shards {1, 2} — CI uses it
//! to validate the JSON schema without paying for the full sweep; the
//! document then carries `"mode": "smoke"`, which exempts it from the
//! full-run scaling gate (4-shard throughput ≥ 2× 1-shard on `clb-4k`)
//! but never from the identity gate. The document is validated against
//! `flowplace.bench.shard.v1` before it is written; a schema bug, an
//! identity break, or an arbiter overgrant fails the run instead of
//! producing a corrupt artifact.

use std::process::ExitCode;

use flowplace_bench::report;
use flowplace_bench::shard::{self, ShardBenchConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ShardBenchConfig::default();
    let mut out_path = String::from("BENCH_shard.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--smoke" => {
                cfg.smoke = true;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    eprintln!("shard bench: smoke={}", cfg.smoke);
    let rows = shard::run_with_progress(&cfg, &mut |msg| eprintln!("  {msg}"));
    print!("{}", shard::rows_table(&rows));

    let doc = shard::to_json(&rows, cfg.smoke);
    if let Err(reason) = report::validate_shard_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

//! Emits `BENCH_sat.json`: modern CDCL (glucose restarts + learnt-DB
//! reduction) vs baseline CDCL (Luby, no reduction) on the SAT
//! placement engine.
//!
//! ```text
//! cargo run --release -p flowplace-bench --bin sat_bench -- \
//!     [--out PATH] [--samples N] [--smoke]
//! ```
//!
//! `--smoke` runs a single sample on the smallest scenario — CI uses it
//! to validate the JSON schema without paying for the full sweep. The
//! document is validated against `flowplace.bench.sat.v1` before it is
//! written; that validator *requires* the two solver configurations to
//! have decoded identical placements, so a determinism regression fails
//! the run instead of silently shipping a divergent artifact.

use std::process::ExitCode;

use flowplace_bench::report;
use flowplace_bench::sat::{self, SatBenchConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SatBenchConfig::default();
    let mut out_path = String::from("BENCH_sat.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = take_value(&args, &mut i, "--out");
            }
            "--samples" => {
                cfg.samples = parse_num(&take_value(&args, &mut i, "--samples"));
            }
            "--smoke" => {
                cfg.smoke = true;
                cfg.samples = 1;
            }
            other => {
                eprintln!("unknown flag {other:?} (see the module docs for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    eprintln!("sat bench: samples={} smoke={}", cfg.samples, cfg.smoke);
    let rows = sat::run(&cfg);
    let stress = sat::stress();
    print!("{}", sat::rows_table(&rows));
    print!("{}", sat::stress_line(&stress));

    let doc = sat::to_json(&cfg, &rows, &stress);
    if let Err(reason) = report::validate_sat_json(&doc) {
        eprintln!("emitted document failed schema validation: {reason}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path} ({} rows, schema ok)", rows.len());
    ExitCode::SUCCESS
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("expected a number, got {s:?}");
        std::process::exit(2);
    })
}

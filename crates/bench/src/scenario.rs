//! Benchmark instance construction, mirroring the paper's setup:
//! fat-tree topology, randomized shortest-path routing, ClassBench-style
//! per-ingress policies, optional shared blacklist rules.

use flowplace_acl::Policy;
use flowplace_classbench::{Generator, Profile};
use flowplace_core::Instance;
use flowplace_routing::{shortest, RouteSet};
use flowplace_topo::{EntryPortId, Topology};

/// Parameters of one benchmark instance.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Fat-tree arity `k` (paper: 8/16/32; scaled here to 4/6/8).
    pub k: usize,
    /// Number of ingress policies (tenants); the first `ingresses` host
    /// ports carry policies.
    pub ingresses: usize,
    /// Shortest paths per ingress (total paths = `ingresses ×
    /// paths_per_ingress`).
    pub paths_per_ingress: usize,
    /// Own (non-shared) rules per policy — the paper's `n`.
    pub rules_per_policy: usize,
    /// Shared blacklist DROP rules prepended to every policy (the
    /// mergeable rules of Experiment 3).
    pub shared_rules: usize,
    /// Uniform switch capacity `C`.
    pub capacity: usize,
    /// RNG seed (policies and routing derive from it).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            k: 4,
            ingresses: 8,
            paths_per_ingress: 2,
            rules_per_policy: 20,
            shared_rules: 0,
            capacity: 100,
            seed: 1,
        }
    }
}

impl ScenarioConfig {
    /// Total paths in the instance.
    pub fn total_paths(&self) -> usize {
        self.ingresses * self.paths_per_ingress
    }
}

/// Builds the instance for a configuration.
///
/// Routing: every tenant ingress routes to `paths_per_ingress` distinct
/// random destinations via randomized shortest paths (no flow
/// descriptors, matching the paper's experiments which do not slice).
///
/// # Panics
///
/// Panics if `ingresses` exceeds the number of host ports of the
/// fat-tree.
pub fn build_instance(cfg: &ScenarioConfig) -> Instance {
    let mut topo = Topology::fat_tree(cfg.k);
    topo.set_uniform_capacity(cfg.capacity);
    let hosts = topo.entry_port_count();
    assert!(
        cfg.ingresses <= hosts,
        "{} ingresses exceed {} hosts of fat-tree k={}",
        cfg.ingresses,
        hosts,
        cfg.k
    );

    // Routes: restrict the per-ingress generator to the tenant prefix.
    let all = shortest::routes_per_ingress(&topo, cfg.paths_per_ingress, cfg.seed);
    let routes: RouteSet = all
        .iter()
        .filter(|r| r.ingress.0 < cfg.ingresses)
        .cloned()
        .collect();

    // Policies: ClassBench firewall profile, one per tenant, plus shared
    // blacklist.
    let generator = Generator::new(Profile::Firewall, 16).with_seed(cfg.seed ^ 0xACE1);
    let shared = generator.blacklist(cfg.shared_rules);
    let policies: Vec<(EntryPortId, Policy)> = (0..cfg.ingresses)
        .map(|i| {
            let own = generator.policy(cfg.rules_per_policy, i as u64);
            let with_shared = prepend_shared(&own, &shared);
            (EntryPortId(i), with_shared)
        })
        .collect();
    Instance::new(topo, routes, policies).expect("generated scenario is valid")
}

fn prepend_shared(policy: &Policy, shared: &[flowplace_acl::Ternary]) -> Policy {
    if shared.is_empty() {
        return policy.clone();
    }
    let max_priority = policy.rules().first().map(|r| r.priority()).unwrap_or(0);
    let mut rules = policy.rules().to_vec();
    let n = shared.len() as u32;
    for (i, m) in shared.iter().enumerate() {
        rules.push(flowplace_acl::Rule::new(
            *m,
            flowplace_acl::Action::Drop,
            max_priority + n - i as u32,
        ));
    }
    Policy::from_rules(rules).expect("shifted priorities remain strict")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_shape() {
        let cfg = ScenarioConfig {
            k: 4,
            ingresses: 6,
            paths_per_ingress: 3,
            rules_per_policy: 10,
            shared_rules: 2,
            capacity: 50,
            seed: 9,
        };
        let inst = build_instance(&cfg);
        assert_eq!(inst.policy_count(), 6);
        assert_eq!(inst.routes().len(), 18);
        assert_eq!(inst.total_policy_rules(), 6 * 12);
        for (_, q) in inst.policies() {
            assert_eq!(q.len(), 12);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = ScenarioConfig::default();
        let a = build_instance(&cfg);
        let b = build_instance(&cfg);
        assert_eq!(a.routes(), b.routes());
        assert_eq!(a.total_policy_rules(), b.total_policy_rules());
    }
}

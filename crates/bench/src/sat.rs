//! CDCL solver benchmark (`BENCH_sat.json`).
//!
//! Races the modern CDCL configuration of `flowplace-pbsat` (glucose
//! adaptive restarts + learnt-DB reduction, the default) against the
//! baseline configuration (Luby restarts, no reduction) on the SAT
//! placement engine over the ClassBench scenarios of 256 / 1k / 4k total
//! rules. Both arms run the identical encoding on the identical
//! instance; the report carries per-arm wall times, the modern arm's
//! CDCL counters (restarts, blocked restarts, DB reductions, learnt
//! clauses, mean LBD — the proof the machinery actually fired), and an
//! `identical` flag asserting the two arms decoded the **same
//! placement**. Placement identity is enforced by
//! [`crate::report::validate_sat_json`]: a SAT model is not unique in
//! general, so identity failing means the configurations diverged where
//! they were expected to agree — a determinism regression worth failing
//! CI over.
//!
//! Schema stability is enforced by [`crate::report::validate_sat_json`];
//! bump [`SCHEMA`] when the shape changes.

use std::fmt::Write as _;
use std::time::Instant;

use flowplace_core::{Objective, PlacementOptions, PlacerEngine, RulePlacer, SolveStatus};
use flowplace_pbsat::{Lit, RestartStrategy, SatResult, Solver, SolverOptions, SolverStats};

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.sat.v1";

/// The baseline CDCL arm: the pre-modernization schedule.
pub fn baseline_options() -> SolverOptions {
    SolverOptions {
        restart: RestartStrategy::Luby,
        db_reduction: false,
    }
}

/// The modern CDCL arm (the solver default).
pub fn modern_options() -> SolverOptions {
    SolverOptions::default()
}

/// Runner parameters (CLI flags of the `sat_bench` binary).
#[derive(Clone, Debug)]
pub struct SatBenchConfig {
    /// Samples per arm; the minimum wall time is reported.
    pub samples: usize,
    /// Smoke mode: single sample, smallest scenario only — used by CI to
    /// validate the JSON schema cheaply.
    pub smoke: bool,
}

impl Default for SatBenchConfig {
    fn default() -> Self {
        SatBenchConfig {
            samples: 3,
            smoke: false,
        }
    }
}

/// One scenario measurement: baseline vs modern CDCL on the SAT engine.
#[derive(Clone, Debug)]
pub struct SatRow {
    /// Scenario label (`classbench-256` …).
    pub scenario: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Solve status of the modern arm (both arms must agree for
    /// `identical` to hold).
    pub status: SolveStatus,
    /// Baseline (Luby, no reduction) end-to-end SAT solve, min ms.
    pub baseline_ms: f64,
    /// Modern (glucose + reduction) end-to-end SAT solve, min ms.
    pub modern_ms: f64,
    /// `baseline_ms / modern_ms`.
    pub speedup: f64,
    /// The two arms decoded byte-identical placements.
    pub identical: bool,
    /// Baseline-arm conflicts (search-effort comparison anchor).
    pub baseline_conflicts: u64,
    /// Modern-arm CDCL counters.
    pub modern: SolverStats,
}

/// Counters from the pigeonhole stress solve — the proof the modern
/// machinery (adaptive restarts, learnt-DB reduction) actually fires.
///
/// The placement scenarios encode generously-capacitated instances
/// whose SAT solves finish in a handful of conflicts, far below the
/// restart (50) and reduction (2000) thresholds. PHP(8,7) — 8 pigeons
/// into 7 holes, provably UNSAT and exponentially hard for resolution
/// — deterministically drives ~3k conflicts through the same solver,
/// so [`crate::report::validate_sat_json`] can require
/// `restarts ≥ 1 && db_reductions ≥ 1` here without depending on
/// scenario difficulty.
#[derive(Clone, Copy, Debug)]
pub struct StressReport {
    /// Pigeon count (holes + 1).
    pub pigeons: u32,
    /// Hole count.
    pub holes: u32,
    /// Wall time of the stress solve, ms.
    pub solve_ms: f64,
    /// CDCL counters under [`modern_options`].
    pub stats: SolverStats,
}

/// Solves the PHP(8,7) pigeonhole instance under [`modern_options`]
/// and returns its counters. Panics unless the verdict is UNSAT — a
/// SAT verdict here would be a soundness bug, not a benchmark result.
pub fn stress() -> StressReport {
    const PIGEONS: u32 = 8;
    const HOLES: u32 = 7;
    let mut s = Solver::with_options(modern_options());
    let vars: Vec<Vec<Lit>> = (0..PIGEONS)
        .map(|_| (0..HOLES).map(|_| Lit::positive(s.new_var())).collect())
        .collect();
    for row in &vars {
        s.add_clause(row);
    }
    for h in 0..HOLES as usize {
        for (p1, row1) in vars.iter().enumerate() {
            for row2 in &vars[p1 + 1..] {
                s.add_clause(&[!row1[h], !row2[h]]);
            }
        }
    }
    let t0 = Instant::now();
    let verdict = s.solve();
    let solve_ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        verdict,
        SatResult::Unsat,
        "PHP({PIGEONS},{HOLES}) must be UNSAT"
    );
    StressReport {
        pigeons: PIGEONS,
        holes: HOLES,
        solve_ms,
        stats: s.stats(),
    }
}

fn solve_arm(
    instance: &flowplace_core::Instance,
    sat: SolverOptions,
    samples: usize,
) -> (f64, flowplace_core::par::ParOutcome) {
    let options = PlacementOptions {
        engine: PlacerEngine::Sat,
        sat,
        ..PlacementOptions::default()
    };
    let placer = RulePlacer::new(options);
    let mut best_ms = f64::INFINITY;
    let mut best = None;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let out = placer.place_par(instance, Objective::TotalRules);
        let elapsed = t0.elapsed().as_secs_f64() * 1000.0;
        if elapsed < best_ms {
            best_ms = elapsed;
            best = Some(out);
        }
    }
    (best_ms, best.expect("at least one sample ran"))
}

/// Runs the full benchmark and returns one row per scenario.
pub fn run(cfg: &SatBenchConfig) -> Vec<SatRow> {
    crate::pipeline::scenarios(cfg.smoke)
        .into_iter()
        .map(|(name, scenario)| run_one(cfg, &name, &scenario))
        .collect()
}

fn run_one(cfg: &SatBenchConfig, name: &str, scenario: &ScenarioConfig) -> SatRow {
    let instance = build_instance(scenario);
    let (baseline_ms, baseline) = solve_arm(&instance, baseline_options(), cfg.samples);
    let (modern_ms, modern) = solve_arm(&instance, modern_options(), cfg.samples);

    let identical = baseline.outcome.placement == modern.outcome.placement
        && baseline.outcome.status == modern.outcome.status;
    SatRow {
        scenario: name.to_string(),
        rules: instance.total_policy_rules(),
        status: modern.outcome.status,
        baseline_ms,
        modern_ms,
        speedup: baseline_ms / modern_ms,
        identical,
        baseline_conflicts: baseline.outcome.stats.sat.map(|s| s.conflicts).unwrap_or(0),
        modern: modern.outcome.stats.sat.unwrap_or_default(),
    }
}

fn status_str(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Optimal => "optimal",
        SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::Unknown => "timeout",
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Renders the rows as the `BENCH_sat.json` document.
pub fn to_json(cfg: &SatBenchConfig, rows: &[SatRow], stress: &StressReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(out, "  \"samples\": {},", cfg.samples);
    let _ = writeln!(
        out,
        "  \"identical\": {},",
        rows.iter().all(|r| r.identical)
    );
    out.push_str("  \"stress\": {\n");
    let _ = writeln!(out, "    \"pigeons\": {},", stress.pigeons);
    let _ = writeln!(out, "    \"holes\": {},", stress.holes);
    let _ = writeln!(out, "    \"verdict\": \"unsat\",");
    let _ = writeln!(out, "    \"solve_ms\": {},", json_num(stress.solve_ms));
    let _ = writeln!(out, "    \"conflicts\": {},", stress.stats.conflicts);
    let _ = writeln!(out, "    \"restarts\": {},", stress.stats.restarts);
    let _ = writeln!(
        out,
        "    \"blocked_restarts\": {},",
        stress.stats.blocked_restarts
    );
    let _ = writeln!(
        out,
        "    \"db_reductions\": {},",
        stress.stats.db_reductions
    );
    let _ = writeln!(out, "    \"learnt\": {},", stress.stats.learnt_clauses);
    let _ = writeln!(
        out,
        "    \"learnt_deleted\": {},",
        stress.stats.learnt_deleted
    );
    let _ = writeln!(
        out,
        "    \"mean_lbd\": {}",
        json_num(stress.stats.mean_lbd())
    );
    out.push_str("  },\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(
            out,
            "      \"status\": {},",
            json_string(status_str(r.status))
        );
        let _ = writeln!(out, "      \"baseline_ms\": {},", json_num(r.baseline_ms));
        let _ = writeln!(out, "      \"modern_ms\": {},", json_num(r.modern_ms));
        let _ = writeln!(out, "      \"speedup\": {},", json_num(r.speedup));
        let _ = writeln!(out, "      \"identical\": {},", r.identical);
        let _ = writeln!(
            out,
            "      \"baseline_conflicts\": {},",
            r.baseline_conflicts
        );
        let _ = writeln!(out, "      \"conflicts\": {},", r.modern.conflicts);
        let _ = writeln!(out, "      \"restarts\": {},", r.modern.restarts);
        let _ = writeln!(
            out,
            "      \"blocked_restarts\": {},",
            r.modern.blocked_restarts
        );
        let _ = writeln!(out, "      \"db_reductions\": {},", r.modern.db_reductions);
        let _ = writeln!(out, "      \"learnt\": {},", r.modern.learnt_clauses);
        let _ = writeln!(
            out,
            "      \"learnt_deleted\": {},",
            r.modern.learnt_deleted
        );
        let _ = writeln!(out, "      \"mean_lbd\": {}", json_num(r.modern.mean_lbd()));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One-line ASCII summary of the stress solve.
pub fn stress_line(s: &StressReport) -> String {
    format!(
        "stress PHP({},{}): unsat in {:.1} ms — conflicts={} restarts={} blocked={} reduces={} learnt={} deleted={} mean lbd={:.2}\n",
        s.pigeons,
        s.holes,
        s.solve_ms,
        s.stats.conflicts,
        s.stats.restarts,
        s.stats.blocked_restarts,
        s.stats.db_reductions,
        s.stats.learnt_clauses,
        s.stats.learnt_deleted,
        s.stats.mean_lbd()
    )
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[SatRow]) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>11} {:>11} {:>8} {:>10} {:>9} {:>8} {:>8} {:>8}\n",
        "scenario",
        "rules",
        "base ms",
        "modern ms",
        "speedup",
        "conflicts",
        "restarts",
        "blocked",
        "reduces",
        "mean lbd"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>11.2} {:>11.2} {:>7.2}x {:>10} {:>9} {:>8} {:>8} {:>8.2}",
            r.scenario,
            r.rules,
            r.baseline_ms,
            r.modern_ms,
            r.speedup,
            r.modern.conflicts,
            r.modern.restarts,
            r.modern.blocked_restarts,
            r.modern.db_reductions,
            r.modern.mean_lbd()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_sat_json;

    fn sample_row() -> SatRow {
        SatRow {
            scenario: "classbench-256".into(),
            rules: 256,
            status: SolveStatus::Optimal,
            baseline_ms: 12.0,
            modern_ms: 8.0,
            speedup: 1.5,
            identical: true,
            baseline_conflicts: 120,
            modern: SolverStats {
                decisions: 400,
                conflicts: 100,
                propagations: 9000,
                restarts: 2,
                blocked_restarts: 1,
                db_reductions: 0,
                learnt_clauses: 90,
                learnt_deleted: 0,
                lbd_sum: 270,
            },
        }
    }

    fn sample_stress() -> StressReport {
        StressReport {
            pigeons: 8,
            holes: 7,
            solve_ms: 55.0,
            stats: SolverStats {
                decisions: 4000,
                conflicts: 2992,
                propagations: 90000,
                restarts: 14,
                blocked_restarts: 0,
                db_reductions: 1,
                learnt_clauses: 2985,
                learnt_deleted: 998,
                lbd_sum: 9000,
            },
        }
    }

    #[test]
    fn json_document_passes_schema_check() {
        let cfg = SatBenchConfig::default();
        let doc = to_json(&cfg, &[sample_row()], &sample_stress());
        validate_sat_json(&doc).expect("emitted document is schema-valid");
    }

    #[test]
    fn divergent_placements_fail_validation() {
        let cfg = SatBenchConfig::default();
        let mut row = sample_row();
        row.identical = false;
        let doc = to_json(&cfg, &[row], &sample_stress());
        assert!(validate_sat_json(&doc).is_err());
    }

    #[test]
    fn stress_without_restarts_or_reductions_fails_validation() {
        let cfg = SatBenchConfig::default();
        let mut stress = sample_stress();
        stress.stats.restarts = 0;
        let doc = to_json(&cfg, &[sample_row()], &stress);
        let err = validate_sat_json(&doc).unwrap_err();
        assert!(err.contains("restarts"), "{err}");

        let mut stress = sample_stress();
        stress.stats.db_reductions = 0;
        let doc = to_json(&cfg, &[sample_row()], &stress);
        let err = validate_sat_json(&doc).unwrap_err();
        assert!(err.contains("db_reductions"), "{err}");
    }

    #[test]
    fn smoke_run_emits_valid_json_with_identical_arms() {
        let cfg = SatBenchConfig {
            samples: 1,
            smoke: true,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].identical, "baseline and modern arms diverged");
        let doc = to_json(&cfg, &rows, &stress());
        validate_sat_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn stress_solve_fires_restarts_and_reductions() {
        let s = stress();
        assert!(s.stats.conflicts >= 2000, "stress instance is hard");
        assert!(s.stats.restarts >= 1, "adaptive restarts fired");
        assert!(s.stats.db_reductions >= 1, "learnt-DB reduction fired");
        assert!(s.stats.learnt_deleted > 0, "reduction deleted clauses");
    }

    #[test]
    fn table_lists_every_scenario() {
        let t = rows_table(&[sample_row()]);
        assert!(t.contains("classbench-256"));
        assert!(t.contains("1.50x"));
    }
}

//! Hot-path micro benchmark (`BENCH_micro.json`).
//!
//! Quantifies the three hot-path overhauls on the ClassBench scenarios:
//!
//! * **Arena allocation counts** — the redundancy pre-pass runs over
//!   every tenant policy with one [`CubeArena`]; `before` is what the
//!   same workload allocated pre-arena (every scratch-buffer request
//!   was a fresh `Vec`, i.e. `allocations + reuse_hits`), `after` is
//!   the fresh allocations that remain. Both are deterministic integer
//!   counters, so this row is byte-stable across machines.
//! * **Batch vs scalar classification throughput** — the same packet
//!   batch against the same priority-ordered cube list, first through
//!   the scalar `Ternary::matches` scan and then through
//!   [`classify_batch`]'s structure-of-arrays kernel. The committed
//!   full-mode artifact must show a ≥ 2× ratio (the `micro_bench`
//!   binary enforces this outside `--smoke`).
//! * **Verify replay & epoch latency** — per-route packet replay via
//!   the scalar [`evaluate_route`] walk vs the batched
//!   [`evaluate_route_batch`] wiring used by `verify_tables`, plus the
//!   end-to-end controller bring-up (solve + deploy) latency on the
//!   4k-rule scenario as a tracking number (`before == after`).
//!
//! Timing rows are machine-dependent; only the committed *ratios* and
//! the deterministic allocation row carry the regression contract.
//! Schema stability is enforced by [`crate::report::validate_micro_json`];
//! bump [`SCHEMA`] when the shape changes.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use flowplace_acl::classify::{classify_batch, BatchClassifier};
use flowplace_acl::{redundancy, ArenaStats, CubeArena, Packet, Ternary};
use flowplace_core::verify::{evaluate_route, evaluate_route_batch};
use flowplace_core::{tables::emit_tables, PlacementOptions};
use flowplace_ctrl::{Controller, CtrlOptions};
use flowplace_rng::{Rng, StdRng};

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.micro.v1";

/// The benches every document must carry (validated).
pub const REQUIRED_BENCHES: [&str; 4] = [
    "redundancy_alloc",
    "classify_throughput",
    "verify_replay",
    "epoch_latency",
];

/// Runner parameters (CLI flags of the `micro_bench` binary).
#[derive(Clone, Debug)]
pub struct MicroBenchConfig {
    /// Timing repetitions per measurement; the best (minimum) time wins,
    /// damping scheduler noise.
    pub samples: usize,
    /// Smoke mode: the smallest scenario and short batches — used by CI
    /// to validate the JSON schema cheaply.
    pub smoke: bool,
}

impl Default for MicroBenchConfig {
    fn default() -> Self {
        MicroBenchConfig {
            samples: 5,
            smoke: false,
        }
    }
}

/// One before/after measurement.
#[derive(Clone, Debug)]
pub struct MicroRow {
    /// Measurement label (see [`REQUIRED_BENCHES`]).
    pub bench: String,
    /// Unit of `before`/`after` (`buffers`, `packets_per_sec`, `ms`).
    pub unit: String,
    /// The pre-overhaul number.
    pub before: f64,
    /// The post-overhaul number.
    pub after: f64,
    /// Improvement factor, oriented so bigger is better (allocation and
    /// latency rows use `before / after`; throughput uses
    /// `after / before`).
    pub ratio: f64,
}

/// The full benchmark result.
#[derive(Clone, Debug)]
pub struct MicroReport {
    /// Arena counters from the redundancy run (deterministic).
    pub arena: ArenaStats,
    /// All measurements, in [`REQUIRED_BENCHES`] order.
    pub rows: Vec<MicroRow>,
}

/// The measurement scenario: the cache bench's `classbench-4k` shape
/// (16 tenants × 256 rules on a k=4 fat-tree), or its smallest sibling
/// in smoke mode.
pub fn scenario(smoke: bool) -> ScenarioConfig {
    if smoke {
        ScenarioConfig {
            k: 4,
            ingresses: 8,
            paths_per_ingress: 2,
            rules_per_policy: 32,
            shared_rules: 0,
            capacity: 100,
            seed: 7,
        }
    } else {
        ScenarioConfig {
            k: 4,
            ingresses: 16,
            paths_per_ingress: 2,
            rules_per_policy: 256,
            shared_rules: 0,
            capacity: 500,
            seed: 7,
        }
    }
}

fn best_of(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn random_packets(width: u32, count: usize, seed: u64) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    (0..count)
        .map(|_| {
            let bits: u128 = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
            Packet::from_bits(bits & mask, width)
        })
        .collect()
}

/// Runs the full benchmark.
///
/// # Panics
///
/// Panics if the scenario is infeasible (it is not) or a measured
/// duration underflows the clock (nanosecond floor applied).
pub fn run(cfg: &MicroBenchConfig) -> MicroReport {
    let scenario = scenario(cfg.smoke);
    let instance = build_instance(&scenario);
    let mut rows = Vec::new();

    // --- redundancy_alloc: deterministic arena counters ---------------
    let mut arena = CubeArena::new();
    for (_, policy) in instance.policies() {
        let _ = redundancy::remove_redundant_with(policy, &mut arena);
    }
    let stats = arena.stats();
    // Pre-arena, every scratch request was a fresh allocation.
    let before = (stats.allocations + stats.reuse_hits) as f64;
    let after = (stats.allocations).max(1) as f64;
    rows.push(MicroRow {
        bench: "redundancy_alloc".into(),
        unit: "buffers".into(),
        before,
        after,
        ratio: before / after,
    });

    // --- classify_throughput: batch vs scalar kernel ------------------
    let (_, policy) = instance
        .policies()
        .next()
        .expect("scenario has at least one policy");
    let cubes: Vec<Ternary> = policy.rules().iter().map(|r| *r.match_field()).collect();
    let n_packets = if cfg.smoke { 512 } else { 4096 };
    let packets = random_packets(policy.width(), n_packets, scenario.seed);
    // Correctness cross-check before timing anything.
    let scalar_verdicts: Vec<Option<usize>> = packets
        .iter()
        .map(|p| cubes.iter().position(|c| c.matches(p)))
        .collect();
    assert_eq!(
        classify_batch(&packets, &cubes),
        scalar_verdicts,
        "batch kernel diverged from the scalar scan"
    );
    let scalar_time = best_of(cfg.samples, || {
        let mut matched = 0usize;
        for p in &packets {
            if cubes.iter().any(|c| c.matches(p)) {
                matched += 1;
            }
        }
        std::hint::black_box(matched);
    });
    let classifier = BatchClassifier::new(&cubes);
    let mut verdicts = Vec::new();
    let mut worklist = Vec::new();
    let batch_time = best_of(cfg.samples, || {
        classifier.classify_into(&packets, &mut verdicts, &mut worklist);
        std::hint::black_box(verdicts.len());
    });
    let pkts_per_sec = |d: Duration| n_packets as f64 / d.as_secs_f64().max(1e-9);
    let (scalar_tput, batch_tput) = (pkts_per_sec(scalar_time), pkts_per_sec(batch_time));
    rows.push(MicroRow {
        bench: "classify_throughput".into(),
        unit: "packets_per_sec".into(),
        before: scalar_tput,
        after: batch_tput,
        ratio: batch_tput / scalar_tput.max(1e-9),
    });

    // --- verify_replay: scalar route walk vs batched kernel wiring ----
    // Deploy once via the controller so the replay runs over real
    // emitted tables, then time both replay paths per route.
    let options = epoch_options();
    let start = Instant::now();
    let ctrl = Controller::with_instance(instance.clone(), options)
        .expect("benchmark scenario is feasible");
    let epoch_ms = start.elapsed().as_secs_f64() * 1e3;
    let placement = ctrl.placement().clone();
    let tables = emit_tables(&instance, &placement).expect("deployed placement emits");
    let replay_packets: Vec<Vec<Packet>> = instance
        .routes()
        .iter()
        .enumerate()
        .map(|(i, route)| {
            let policy = instance.policy(route.ingress).expect("policy per route");
            random_packets(
                policy.width(),
                if cfg.smoke { 128 } else { 1024 },
                scenario.seed ^ ((i as u64) << 8),
            )
        })
        .collect();
    let scalar_replay = best_of(cfg.samples, || {
        let mut drops = 0usize;
        for (route, packets) in instance.routes().iter().zip(&replay_packets) {
            for p in packets {
                if evaluate_route(&tables, route, p) == flowplace_acl::Action::Drop {
                    drops += 1;
                }
            }
        }
        std::hint::black_box(drops);
    });
    let batch_replay = best_of(cfg.samples, || {
        let mut drops = 0usize;
        for (route, packets) in instance.routes().iter().zip(&replay_packets) {
            drops += evaluate_route_batch(&tables, route, packets)
                .iter()
                .filter(|a| **a == flowplace_acl::Action::Drop)
                .count();
        }
        std::hint::black_box(drops);
    });
    let (scalar_ms, batch_ms) = (
        scalar_replay.as_secs_f64() * 1e3,
        batch_replay.as_secs_f64() * 1e3,
    );
    rows.push(MicroRow {
        bench: "verify_replay".into(),
        unit: "ms".into(),
        before: scalar_ms.max(1e-6),
        after: batch_ms.max(1e-6),
        ratio: scalar_ms.max(1e-6) / batch_ms.max(1e-6),
    });

    // --- epoch_latency: end-to-end bring-up tracking number -----------
    rows.push(MicroRow {
        bench: "epoch_latency".into(),
        unit: "ms".into(),
        before: epoch_ms.max(1e-6),
        after: epoch_ms.max(1e-6),
        ratio: 1.0,
    });

    MicroReport { arena: stats, rows }
}

/// Same solver posture as the cache bench: greedy warm start plus a
/// wall-clock budget keeps the 4k initial solve at seconds.
fn epoch_options() -> CtrlOptions {
    let mut placement = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    placement.mip.time_limit = Some(Duration::from_secs(10));
    CtrlOptions {
        placement,
        ..CtrlOptions::default()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0000".to_string()
    }
}

/// Renders the report as the `BENCH_micro.json` document.
pub fn to_json(cfg: &MicroBenchConfig, report: &MicroReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(out, "  \"samples\": {},", cfg.samples.max(1));
    let _ = writeln!(
        out,
        "  \"mode\": {},",
        json_string(if cfg.smoke { "smoke" } else { "full" })
    );
    out.push_str("  \"arena\": {\n");
    let _ = writeln!(out, "    \"allocations\": {},", report.arena.allocations);
    let _ = writeln!(out, "    \"reuse_hits\": {},", report.arena.reuse_hits);
    let _ = writeln!(out, "    \"peak_bytes\": {}", report.arena.peak_bytes);
    out.push_str("  },\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in report.rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"bench\": {},", json_string(&r.bench));
        let _ = writeln!(out, "      \"unit\": {},", json_string(&r.unit));
        let _ = writeln!(out, "      \"before\": {},", json_num(r.before));
        let _ = writeln!(out, "      \"after\": {},", json_num(r.after));
        let _ = writeln!(out, "      \"ratio\": {}", json_num(r.ratio));
        out.push_str(if i + 1 == report.rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(report: &MicroReport) -> String {
    let mut out = format!(
        "{:<20} {:<16} {:>14} {:>14} {:>8}\n",
        "bench", "unit", "before", "after", "ratio"
    );
    for r in &report.rows {
        let _ = writeln!(
            out,
            "{:<20} {:<16} {:>14.2} {:>14.2} {:>7.2}x",
            r.bench, r.unit, r.before, r.after, r.ratio
        );
    }
    let _ = writeln!(
        out,
        "arena: {} allocations, {} reuse hits, {} peak bytes ({:.1}% reuse)",
        report.arena.allocations,
        report.arena.reuse_hits,
        report.arena.peak_bytes,
        report.arena.reuse_ratio() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_micro_json;

    fn smoke_report() -> (MicroBenchConfig, MicroReport) {
        let cfg = MicroBenchConfig {
            samples: 1,
            smoke: true,
        };
        let report = run(&cfg);
        (cfg, report)
    }

    #[test]
    fn smoke_run_emits_valid_document() {
        let (cfg, report) = smoke_report();
        let doc = to_json(&cfg, &report);
        validate_micro_json(&doc).expect("smoke document validates");
        for bench in REQUIRED_BENCHES {
            assert!(
                report.rows.iter().any(|r| r.bench == bench),
                "missing bench {bench}"
            );
        }
        // The allocation row is deterministic: the arena must have
        // served most requests from the pool.
        let alloc = report
            .rows
            .iter()
            .find(|r| r.bench == "redundancy_alloc")
            .unwrap();
        assert!(
            alloc.after < alloc.before,
            "arena did not reduce allocations: {alloc:?}"
        );
        assert!(report.arena.reuse_hits > report.arena.allocations);
        assert!(rows_table(&report).contains("redundancy_alloc"));
    }

    #[test]
    fn allocation_row_is_deterministic_across_runs() {
        let (_, a) = smoke_report();
        let (_, b) = smoke_report();
        assert_eq!(a.arena, b.arena);
        let row = |r: &MicroReport| {
            r.rows
                .iter()
                .find(|x| x.bench == "redundancy_alloc")
                .map(|x| (x.before as u64, x.after as u64))
                .unwrap()
        };
        assert_eq!(row(&a), row(&b));
    }
}

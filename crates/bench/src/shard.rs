//! Machine-readable sharded-controller benchmark (`BENCH_shard.json`).
//!
//! Measures what the shard runtime buys on multi-tenant event streams:
//! each ClassBench scenario is deployed once, then driven with a
//! deterministic *tenant-burst* trace — every epoch's batch holds one
//! tenant's rule churn (a top-priority add/remove pair ×4, so policy
//! sizes stay constant and every event settles on the greedy tier).
//! The identical trace is replayed through a plain [`Controller`]
//! (the baseline) and through [`ShardedController`] at each shard
//! count; tenants are pinned to shards in contiguous blocks
//! (`tenant_index * shards / tenants`) so edge-sharing tenants
//! co-shard.
//!
//! Reported per (scenario, shards) row: event throughput, p99 epoch
//! latency (from the shard runtime's wall-telemetry spans, in
//! microseconds), the scoped-verification skip counters, and the
//! **identity bit** — whether the sharded run's placement, stats, and
//! dataplane dump are byte-identical to the baseline's. The single-core
//! scaling story is honest: one shard never skips a route (every epoch
//! dirties its only slice), so `shards=1` is the unsharded cost, and
//! finer partitions win exactly the verification their isolation
//! proves redundant.
//!
//! Schema stability is enforced by
//! [`crate::report::validate_shard_json`], which hard-fails unless
//! every row's `identical` is true and — on full (non-smoke) documents
//! — the 4-shard event throughput on the `clb-4k` scenario is at least
//! twice the 1-shard throughput. Bump [`SCHEMA`] when the shape
//! changes.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use flowplace_acl::{Action, Rule, RuleId, Ternary};
use flowplace_core::PlacementOptions;
use flowplace_ctrl::{Controller, CtrlOptions, Event, ShardSpec, ShardedController};
use flowplace_obs::Obs;
use flowplace_topo::EntryPortId;

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.shard.v1";

/// Shard counts swept by a full run.
pub const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Priority of every churned rule: far above anything the ClassBench
/// generator emits, so each add lands at `RuleId(0)` (policies order by
/// descending priority) and the paired remove can name it statically.
const CHURN_PRIORITY: u32 = 1 << 20;

/// Add/remove pairs per tenant burst; with the controller's default
/// batch size of 8, one burst is exactly one epoch.
const PAIRS_PER_BURST: usize = 4;

/// Runner parameters (CLI flags of the `shard_bench` binary).
#[derive(Clone, Debug, Default)]
pub struct ShardBenchConfig {
    /// Smoke mode: smallest scenario, shards {1, 2}, one burst round —
    /// used by CI to validate the JSON schema cheaply. Smoke documents
    /// carry `"mode": "smoke"` and are exempt from the throughput gate
    /// (the identity gate always applies).
    pub smoke: bool,
}

/// One (scenario, shards) measurement.
#[derive(Clone, Debug)]
pub struct ShardRow {
    /// Scenario label (`clb-256` …).
    pub scenario: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Tenant (ingress policy) count.
    pub tenants: usize,
    /// Shard count this row ran with.
    pub shards: u32,
    /// Events replayed.
    pub events: u64,
    /// Epochs committed.
    pub epochs: u64,
    /// Wall-clock replay time, milliseconds.
    pub elapsed_ms: f64,
    /// `events / elapsed` — the headline throughput.
    pub events_per_sec: f64,
    /// 99th-percentile epoch latency in microseconds, from the
    /// `ctrl.shard.epoch` wall-telemetry spans.
    pub p99_epoch_us: u64,
    /// Whether placement, stats, and dataplane dump are byte-identical
    /// to the unsharded baseline on the same trace (validated: must be
    /// true).
    pub identical: bool,
    /// Routes that rode the scoped-verification fast path.
    pub routes_skipped: u64,
    /// Routes verified in full.
    pub routes_full: u64,
    /// Arbiter overgrant alarms (validated: must be zero).
    pub overgrants: u64,
}

/// Scenario sweep. Tenants × rules-per-policy give the label's total
/// rule count; ample uniform capacity keeps every burst on the greedy
/// tier (capacity pressure is the chaos suite's job, not the
/// throughput benchmark's).
///
/// The shapes are deliberately few-fat-tenant: the deterministic verify
/// packet set is quadratic in per-policy rules (pairwise rule
/// intersections), so concentrating the rule budget in few policies
/// makes full verification the dominant epoch cost — which is exactly
/// the work the shard runtime's scoped sweep elides for untouched
/// shards. Many-thin-tenant shapes measure the solver instead and say
/// nothing about sharding.
pub fn scenarios(smoke: bool) -> Vec<(String, ScenarioConfig)> {
    let mk = |rules_per_policy, capacity| ScenarioConfig {
        k: 4,
        ingresses: 4,
        paths_per_ingress: 2,
        rules_per_policy,
        shared_rules: 0,
        capacity,
        seed: 11,
    };
    let mut out = vec![("clb-256".to_string(), mk(64, 256))];
    if !smoke {
        out.push(("clb-1k".to_string(), mk(256, 512)));
        out.push(("clb-4k".to_string(), mk(1024, 1024)));
    }
    out
}

/// Shard counts for a run (smoke keeps the cheap half).
pub fn shard_counts(smoke: bool) -> Vec<u32> {
    if smoke {
        vec![1, 2]
    } else {
        SHARD_COUNTS.to_vec()
    }
}

/// Burst rounds per run: every tenant gets this many one-epoch bursts.
fn rounds(smoke: bool) -> usize {
    if smoke {
        1
    } else {
        4
    }
}

/// Contiguous block partition: tenant `t` of `tenants` goes to shard
/// `t * shards / tenants`, so tenants sharing a fat-tree edge switch
/// share a shard.
pub fn block_spec(tenants: usize, shards: u32) -> ShardSpec {
    let mut spec = ShardSpec::new(shards);
    for t in 0..tenants {
        spec = spec.with_override(EntryPortId(t), (t * shards as usize / tenants) as u32);
    }
    spec
}

/// A fresh 16-bit exact match for churn pair `counter` (distinct
/// low-collision patterns; the exact value only has to be
/// deterministic).
fn churn_match(counter: usize) -> Ternary {
    let bits = (counter.wrapping_mul(0x9E37) ^ 0x2A5A) & 0xFFFF;
    let text: String = (0..16)
        .rev()
        .map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })
        .collect();
    Ternary::parse(&text).expect("16 binary digits parse")
}

/// The deterministic tenant-burst trace: `rounds × tenants` bursts,
/// each burst [`PAIRS_PER_BURST`] add/remove pairs against one tenant.
/// A pure function of the scenario shape, so every arm replays the
/// identical stream.
pub fn tenant_burst_events(tenants: usize, rounds: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(rounds * tenants * PAIRS_PER_BURST * 2);
    let mut counter = 0usize;
    for _ in 0..rounds {
        for t in 0..tenants {
            let ingress = EntryPortId(t);
            for _ in 0..PAIRS_PER_BURST {
                events.push(Event::AddRule {
                    ingress,
                    rule: Rule::new(churn_match(counter), Action::Drop, CHURN_PRIORITY),
                });
                events.push(Event::RemoveRule {
                    ingress,
                    rule: RuleId(0),
                });
                counter += 1;
            }
        }
    }
    events
}

/// 99th percentile (nearest-rank) of the `ctrl.shard.epoch` span
/// durations, which wall telemetry records in microseconds.
fn p99_epoch_us(obs: &Obs) -> u64 {
    let mut durations: Vec<u64> = obs
        .spans
        .spans()
        .iter()
        .filter(|s| s.name == "ctrl.shard.epoch")
        .filter_map(|s| s.duration_ms())
        .collect();
    if durations.is_empty() {
        return 0;
    }
    durations.sort_unstable();
    durations[(durations.len() - 1) * 99 / 100]
}

/// Runs the full benchmark.
///
/// # Panics
///
/// Panics if a scenario is infeasible or any replay errors — the
/// benchmark's scenarios are sized to stay on the greedy tier.
pub fn run(cfg: &ShardBenchConfig) -> Vec<ShardRow> {
    run_with_progress(cfg, &mut |_| {})
}

/// [`run`] with a progress sink: one message per deployed scenario and
/// per finished arm.
pub fn run_with_progress(cfg: &ShardBenchConfig, progress: &mut dyn FnMut(&str)) -> Vec<ShardRow> {
    // Same solver posture as the delegation bench: greedy warm start
    // plus a wall-clock budget keeps the initial solves at seconds; the
    // measured bursts all settle on the greedy tier after that.
    let mut placement = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    placement.mip.time_limit = Some(Duration::from_secs(10));
    let options = CtrlOptions {
        placement,
        ..CtrlOptions::default()
    };

    let mut rows = Vec::new();
    for (name, scenario) in scenarios(cfg.smoke) {
        let instance = build_instance(&scenario);
        let events = tenant_burst_events(scenario.ingresses, rounds(cfg.smoke));

        // The unsharded baseline: same deployment, same trace.
        let mut baseline = Controller::with_instance(instance.clone(), options.clone())
            .expect("benchmark scenarios are feasible");
        baseline
            .replay(events.iter().cloned())
            .expect("baseline replay stays on the greedy tier");
        progress(&format!(
            "{name}: baseline replayed ({} events)",
            events.len()
        ));

        for shards in shard_counts(cfg.smoke) {
            let spec = block_spec(scenario.ingresses, shards);
            let mut sharded =
                ShardedController::with_instance(instance.clone(), options.clone(), spec)
                    .expect("benchmark scenarios are feasible");
            sharded.attach_shard_obs(Obs::new());
            sharded.set_wall_telemetry(true);

            let start = Instant::now();
            let reports = sharded
                .replay(events.iter().cloned())
                .expect("sharded replay stays on the greedy tier");
            let elapsed = start.elapsed();

            let identical = baseline.placement() == sharded.placement()
                && baseline.stats() == sharded.stats()
                && baseline.dataplane().dump() == sharded.inner().dataplane().dump();
            let verify = sharded.verify_counters();
            let elapsed_ms = elapsed.as_secs_f64() * 1000.0;
            let row = ShardRow {
                scenario: name.clone(),
                rules: instance.total_policy_rules(),
                tenants: scenario.ingresses,
                shards,
                events: events.len() as u64,
                epochs: reports.len() as u64,
                elapsed_ms,
                events_per_sec: if elapsed_ms > 0.0 {
                    events.len() as f64 * 1000.0 / elapsed_ms
                } else {
                    0.0
                },
                p99_epoch_us: sharded.shard_obs().map_or(0, p99_epoch_us),
                identical,
                routes_skipped: verify.routes_skipped,
                routes_full: verify.routes_full,
                overgrants: sharded.coord_stats().overgrants,
            };
            progress(&format!(
                "{name} shards={shards}: {:.0} events/s, p99 {}us, identical={}, {} routes skipped",
                row.events_per_sec, row.p99_epoch_us, row.identical, row.routes_skipped
            ));
            rows.push(row);
        }
    }
    rows
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0000".to_string()
    }
}

/// Renders the rows as the `BENCH_shard.json` document. `smoke` selects
/// the `mode` tag, which decides whether the validator enforces the
/// full-run throughput gate.
pub fn to_json(rows: &[ShardRow], smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(
        out,
        "  \"mode\": {},",
        json_string(if smoke { "smoke" } else { "full" })
    );
    let _ = writeln!(
        out,
        "  \"identical\": {},",
        rows.iter().all(|r| r.identical)
    );
    let _ = writeln!(
        out,
        "  \"overgrants\": {},",
        rows.iter().map(|r| r.overgrants).sum::<u64>()
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(out, "      \"tenants\": {},", r.tenants);
        let _ = writeln!(out, "      \"shards\": {},", r.shards);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let _ = writeln!(out, "      \"epochs\": {},", r.epochs);
        let _ = writeln!(out, "      \"elapsed_ms\": {},", json_num(r.elapsed_ms));
        let _ = writeln!(
            out,
            "      \"events_per_sec\": {},",
            json_num(r.events_per_sec)
        );
        let _ = writeln!(out, "      \"p99_epoch_us\": {},", r.p99_epoch_us);
        let _ = writeln!(out, "      \"identical\": {},", r.identical);
        let _ = writeln!(out, "      \"routes_skipped\": {},", r.routes_skipped);
        let _ = writeln!(out, "      \"routes_full\": {},", r.routes_full);
        let _ = writeln!(out, "      \"overgrants\": {}", r.overgrants);
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[ShardRow]) -> String {
    let mut out = format!(
        "{:<10} {:>6} {:>8} {:>7} {:>8} {:>12} {:>12} {:>10} {:>9} {:>9}\n",
        "scenario",
        "rules",
        "tenants",
        "shards",
        "events",
        "events/s",
        "p99 us",
        "identical",
        "skipped",
        "full"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>7} {:>8} {:>12.0} {:>12} {:>10} {:>9} {:>9}",
            r.scenario,
            r.rules,
            r.tenants,
            r.shards,
            r.events,
            r.events_per_sec,
            r.p99_epoch_us,
            r.identical,
            r.routes_skipped,
            r.routes_full
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_shard_json;

    fn sample_row(shards: u32, eps: f64) -> ShardRow {
        ShardRow {
            scenario: "clb-4k".into(),
            rules: 4096,
            tenants: 64,
            shards,
            events: 2048,
            epochs: 256,
            elapsed_ms: 1000.0,
            events_per_sec: eps,
            p99_epoch_us: 900,
            identical: true,
            routes_skipped: 180,
            routes_full: 76,
            overgrants: 0,
        }
    }

    #[test]
    fn smoke_json_document_passes_schema_check() {
        let doc = to_json(&[sample_row(1, 100.0)], true);
        validate_shard_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn full_document_requires_the_throughput_gate() {
        let good = to_json(&[sample_row(1, 100.0), sample_row(4, 250.0)], false);
        validate_shard_json(&good).expect("2.5x at 4 shards passes");
        let bad = to_json(&[sample_row(1, 100.0), sample_row(4, 150.0)], false);
        assert!(
            validate_shard_json(&bad).is_err(),
            "1.5x at 4 shards must fail the full-mode gate"
        );
    }

    #[test]
    fn validator_rejects_identity_breaks() {
        let mut row = sample_row(1, 100.0);
        row.identical = false;
        let doc = to_json(&[row], true);
        assert!(validate_shard_json(&doc).is_err());
    }

    #[test]
    fn validator_rejects_overgrants() {
        let mut row = sample_row(1, 100.0);
        row.overgrants = 3;
        let doc = to_json(&[row], true);
        assert!(validate_shard_json(&doc).is_err());
    }

    #[test]
    fn tenant_bursts_are_per_tenant_and_size_stable() {
        let events = tenant_burst_events(4, 2);
        assert_eq!(events.len(), 2 * 4 * PAIRS_PER_BURST * 2);
        // Every batch-of-8 window touches exactly one tenant.
        for burst in events.chunks(PAIRS_PER_BURST * 2) {
            let tenants: std::collections::BTreeSet<_> = burst
                .iter()
                .map(|e| match e {
                    Event::AddRule { ingress, .. } | Event::RemoveRule { ingress, .. } => *ingress,
                    other => panic!("unexpected event {other:?}"),
                })
                .collect();
            assert_eq!(tenants.len(), 1);
        }
    }

    #[test]
    fn block_spec_is_contiguous_and_total() {
        let spec = block_spec(16, 4);
        let blocks: Vec<u32> = (0..16).map(|t| spec.shard_of(EntryPortId(t))).collect();
        assert_eq!(blocks, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    fn smoke_run_is_identical_and_schema_valid() {
        let cfg = ShardBenchConfig { smoke: true };
        let rows = run(&cfg);
        assert_eq!(rows.len(), shard_counts(true).len());
        assert!(rows.iter().all(|r| r.identical), "identity broke: {rows:?}");
        assert!(rows.iter().all(|r| r.overgrants == 0));
        let doc = to_json(&rows, true);
        validate_shard_json(&doc).expect("smoke document is schema-valid");
    }
}

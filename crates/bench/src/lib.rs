//! Experiment harness reproducing the paper's evaluation (§V).
//!
//! Every table and figure in the paper has a generator here, exposed both
//! through the `repro` binary (full parameter sweeps, CSV + ASCII output)
//! and through Criterion benches (small representative points):
//!
//! | paper artifact | function | bench target |
//! |---|---|---|
//! | Fig. 7/8/9 (runtime vs #rules, three network sizes) | [`experiments::exp1_rules`] | `exp1_rules` |
//! | Fig. 10 (runtime vs #paths) | [`experiments::exp2_paths`] | `exp2_paths` |
//! | Table II (merging capacity vs overhead) | [`experiments::exp3_merging`] | `exp3_merging` |
//! | Fig. 11 (runtime vs switch capacity) | [`experiments::exp4_capacity`] | `exp4_capacity` |
//! | Experiment 5 (incremental deployment) | [`experiments::exp5_incremental`] | `exp5_incremental` |
//! | §V rule-sharing claim (`B ≪ p·r`) | [`experiments::exp6_sharing`] | — |
//! | ablation: dependency encodings | [`experiments::ablate_dependency`] | `ablate_dep_encoding` |
//! | ablation: ILP vs PB-SAT feasibility | [`experiments::ablate_sat_vs_ilp`] | `ablate_sat_vs_ilp` |
//!
//! Scaling: the paper drives CPLEX on fat-trees up to k=32 with 1024
//! paths (≈500K ILP variables); our from-scratch MILP substrate runs the
//! same model families at proportionally scaled sizes (see DESIGN.md §2
//! and EXPERIMENTS.md for the factor bookkeeping). The *shapes* the paper
//! reports — the over-constrained cliff, the capacity phase transition,
//! merging turning infeasible instances feasible — are reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod delegation;
pub mod experiments;
pub mod harness;
pub mod incremental;
pub mod micro;
pub mod pipeline;
pub mod report;
pub mod sat;
pub mod scenario;
pub mod shard;

pub use scenario::{build_instance, ScenarioConfig};

//! Machine-readable pipeline benchmark (`BENCH_pipeline.json`).
//!
//! Times the three-stage parallel pipeline ([`flowplace_core::par`]) —
//! dependency graphs, candidate generation, portfolio solve — against the
//! serial single-engine path on ClassBench scenarios of 256 / 1k / 4k
//! total rules, and emits the per-stage wall times plus the end-to-end
//! speedup as a small hand-rolled JSON document (the workspace is
//! dependency-free, so no serde).
//!
//! The serial baseline is the default configuration a user gets without
//! `--threads`/`--portfolio`: the optimizing ILP engine with a greedy
//! warm start under a wall-clock budget. The parallel run races ILP
//! against PB-SAT feasibility (paper §IV-D) on top of the threaded
//! pipeline, so on hard instances the speedup comes from whichever
//! engine concludes first — the honest win on a box with few cores.
//!
//! Schema stability is enforced by
//! [`crate::report::validate_pipeline_json`]; bump [`SCHEMA`] when the
//! shape changes.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use flowplace_core::par::ParallelConfig;
use flowplace_core::{Objective, PlacementOptions, RulePlacer, SolveStatus};

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.pipeline.v1";

/// Runner parameters (CLI flags of the `pipeline` binary).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Worker threads for the parallel pipeline (also the portfolio
    /// degree cap; `0` = auto).
    pub threads: usize,
    /// Samples per measurement; the minimum is reported.
    pub samples: usize,
    /// Wall-clock budget per solve (both serial and parallel).
    pub time_limit: Duration,
    /// Smoke mode: single sample, short budget, smallest scenario first —
    /// used by CI to validate the JSON schema cheaply.
    pub smoke: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: 4,
            samples: 3,
            time_limit: Duration::from_secs(10),
            smoke: false,
        }
    }
}

/// One benchmark scenario × configuration measurement.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Scenario label (`classbench-256` …).
    pub scenario: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Threads used by the parallel run.
    pub threads: usize,
    /// Serial end-to-end wall time (min over samples), milliseconds.
    pub serial_ms: f64,
    /// Serial solve status.
    pub serial_status: SolveStatus,
    /// Parallel (pipeline + portfolio) end-to-end wall time, ms.
    pub parallel_ms: f64,
    /// Parallel solve status.
    pub parallel_status: SolveStatus,
    /// Which engine produced the parallel result (`portfolio:sat` …).
    pub engine: String,
    /// Stage 1 (dependency graphs) wall time, ms.
    pub stage_depgraphs_ms: f64,
    /// Stage 2 (candidate generation) wall time, ms.
    pub stage_candidates_ms: f64,
    /// Stage 3 (solve) wall time, ms.
    pub stage_solve_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
}

/// The benchmark scenarios: ClassBench firewall policies at 256 / 1k /
/// 4k total rules on a k=4 fat-tree, capacities calibrated so every
/// instance is feasible. Smoke mode keeps only the smallest.
pub fn scenarios(smoke: bool) -> Vec<(String, ScenarioConfig)> {
    let mk = |ingresses, rules_per_policy, capacity| ScenarioConfig {
        k: 4,
        ingresses,
        paths_per_ingress: 2,
        rules_per_policy,
        shared_rules: 0,
        capacity,
        seed: 7,
    };
    let mut out = vec![("classbench-256".to_string(), mk(8, 32, 100))];
    if !smoke {
        out.push(("classbench-1k".to_string(), mk(16, 64, 150)));
        out.push(("classbench-4k".to_string(), mk(16, 256, 500)));
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Runs the full benchmark and returns one row per scenario.
pub fn run(cfg: &PipelineConfig) -> Vec<PipelineRow> {
    scenarios(cfg.smoke)
        .into_iter()
        .map(|(name, scenario)| run_one(cfg, &name, &scenario))
        .collect()
}

fn run_one(cfg: &PipelineConfig, name: &str, scenario: &ScenarioConfig) -> PipelineRow {
    let instance = build_instance(scenario);

    let mut serial_options = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    serial_options.mip.time_limit = Some(cfg.time_limit);

    let mut parallel_options = serial_options.clone();
    parallel_options.parallel = ParallelConfig {
        threads: cfg.threads,
        portfolio: true,
    };

    // Serial baseline: the default single-engine path, end to end.
    let serial_placer = RulePlacer::new(serial_options);
    let mut serial_ms_best = f64::INFINITY;
    let mut serial_status = SolveStatus::Unknown;
    for _ in 0..cfg.samples.max(1) {
        let t0 = Instant::now();
        let outcome = serial_placer
            .place(&instance, Objective::TotalRules)
            .expect("placement never errors");
        let elapsed = ms(t0.elapsed());
        if elapsed < serial_ms_best {
            serial_ms_best = elapsed;
            serial_status = outcome.status;
        }
    }

    // Parallel pipeline + portfolio, keeping the stage split of the
    // fastest sample.
    let parallel_placer = RulePlacer::new(parallel_options);
    let mut parallel_ms_best = f64::INFINITY;
    let mut parallel_status = SolveStatus::Unknown;
    let mut engine = String::new();
    let mut stage_ms = [0.0f64; 3];
    for _ in 0..cfg.samples.max(1) {
        let t0 = Instant::now();
        let par = parallel_placer.place_par(&instance, Objective::TotalRules);
        let elapsed = ms(t0.elapsed());
        if elapsed < parallel_ms_best {
            parallel_ms_best = elapsed;
            parallel_status = par.outcome.status;
            engine = par.provenance.to_string();
            stage_ms = [
                ms(par.stages.depgraphs),
                ms(par.stages.candidates),
                ms(par.stages.solve),
            ];
        }
    }

    PipelineRow {
        scenario: name.to_string(),
        rules: instance.total_policy_rules(),
        threads: cfg.threads,
        serial_ms: serial_ms_best,
        serial_status,
        parallel_ms: parallel_ms_best,
        parallel_status,
        engine,
        stage_depgraphs_ms: stage_ms[0],
        stage_candidates_ms: stage_ms[1],
        stage_solve_ms: stage_ms[2],
        speedup: serial_ms_best / parallel_ms_best,
    }
}

fn status_str(s: SolveStatus) -> &'static str {
    match s {
        SolveStatus::Optimal => "optimal",
        SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::Unknown => "timeout",
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        // Infinity is not valid JSON; an unmeasured division degrades
        // to 0 rather than corrupting the document.
        "0.000".to_string()
    }
}

/// Renders the rows as the `BENCH_pipeline.json` document.
pub fn to_json(cfg: &PipelineConfig, rows: &[PipelineRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(out, "  \"threads\": {},", cfg.threads);
    let _ = writeln!(out, "  \"samples\": {},", cfg.samples);
    let _ = writeln!(
        out,
        "  \"time_limit_ms\": {},",
        json_num(cfg.time_limit.as_secs_f64() * 1000.0)
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(out, "      \"threads\": {},", r.threads);
        let _ = writeln!(out, "      \"serial_ms\": {},", json_num(r.serial_ms));
        let _ = writeln!(
            out,
            "      \"serial_status\": {},",
            json_string(status_str(r.serial_status))
        );
        let _ = writeln!(out, "      \"parallel_ms\": {},", json_num(r.parallel_ms));
        let _ = writeln!(
            out,
            "      \"parallel_status\": {},",
            json_string(status_str(r.parallel_status))
        );
        let _ = writeln!(out, "      \"engine\": {},", json_string(&r.engine));
        let _ = writeln!(
            out,
            "      \"stage_depgraphs_ms\": {},",
            json_num(r.stage_depgraphs_ms)
        );
        let _ = writeln!(
            out,
            "      \"stage_candidates_ms\": {},",
            json_num(r.stage_candidates_ms)
        );
        let _ = writeln!(
            out,
            "      \"stage_solve_ms\": {},",
            json_num(r.stage_solve_ms)
        );
        let _ = writeln!(out, "      \"speedup\": {}", json_num(r.speedup));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[PipelineRow]) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>12} {:>12} {:>8} {:<14} {:>9} {:>9} {:>9}\n",
        "scenario",
        "rules",
        "serial ms",
        "parallel ms",
        "speedup",
        "engine",
        "deps ms",
        "cands ms",
        "solve ms"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12.2} {:>12.2} {:>7.1}x {:<14} {:>9.2} {:>9.2} {:>9.2}",
            r.scenario,
            r.rules,
            r.serial_ms,
            r.parallel_ms,
            r.speedup,
            r.engine,
            r.stage_depgraphs_ms,
            r.stage_candidates_ms,
            r.stage_solve_ms
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_pipeline_json;

    fn sample_row() -> PipelineRow {
        PipelineRow {
            scenario: "classbench-256".into(),
            rules: 256,
            threads: 4,
            serial_ms: 95.0,
            serial_status: SolveStatus::Optimal,
            parallel_ms: 5.0,
            parallel_status: SolveStatus::Optimal,
            engine: "portfolio:sat".into(),
            stage_depgraphs_ms: 0.2,
            stage_candidates_ms: 0.5,
            stage_solve_ms: 4.0,
            speedup: 19.0,
        }
    }

    #[test]
    fn json_document_passes_schema_check() {
        let cfg = PipelineConfig::default();
        let doc = to_json(&cfg, &[sample_row()]);
        validate_pipeline_json(&doc).expect("emitted document is schema-valid");
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(f64::INFINITY), "0.000");
    }

    #[test]
    fn smoke_run_emits_valid_json() {
        let cfg = PipelineConfig {
            threads: 2,
            samples: 1,
            time_limit: Duration::from_millis(500),
            smoke: true,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].rules, 256);
        let doc = to_json(&cfg, &rows);
        validate_pipeline_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn table_lists_every_scenario() {
        let t = rows_table(&[sample_row()]);
        assert!(t.contains("classbench-256"));
        assert!(t.contains("portfolio:sat"));
    }
}

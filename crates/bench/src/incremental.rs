//! Machine-readable warm-path benchmark (`BENCH_incremental.json`).
//!
//! Drives two controllers — one cold (`--warm off`), one with the warm
//! caches enabled (the default) — through the *same* §IV-E update
//! stream in lockstep, and reports the wall-clock each side spends
//! re-solving epochs. The stream is built from rounds of
//! checkpoint → rule modifications → full re-solve → rollback, the
//! shape of a controller that speculatively applies an update batch and
//! backs it out: every round after the first replays instances the warm
//! controller has already solved, so the placement memo answers them in
//! O(1) while the cold controller pays the full solve again, and the
//! dirty-ingress fingerprints confine stage-1/2 recomputation to the
//! touched policies.
//!
//! Byte-identity is checked inside the benchmark: after every epoch the
//! warm controller's placement and emitted dataplane tables must equal
//! the cold controller's exactly, and the `identical` fields of the
//! document record that the check held for the whole run.
//!
//! Schema stability is enforced by
//! [`crate::report::validate_incremental_json`]; bump [`SCHEMA`] when
//! the shape changes.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use flowplace_core::WarmConfig;
use flowplace_ctrl::{Controller, CtrlOptions, Event};

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.incremental.v1";

/// Runner parameters (CLI flags of the `incremental` binary).
#[derive(Clone, Debug)]
pub struct IncrementalConfig {
    /// Checkpoint → modify → solve → rollback rounds per scenario; the
    /// first round is paid by both sides, the rest are replays.
    pub rounds: usize,
    /// Smoke mode: fewer rounds, smallest scenario only — used by CI to
    /// validate the JSON schema cheaply.
    pub smoke: bool,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            rounds: 6,
            smoke: false,
        }
    }
}

/// One scenario's cold-vs-warm measurement.
#[derive(Clone, Debug)]
pub struct IncrementalRow {
    /// Scenario label (`classbench-256` …).
    pub scenario: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Epochs committed by each controller (one event per epoch).
    pub epochs: u64,
    /// Rounds in the update stream.
    pub rounds: usize,
    /// Cold controller wall time over the stream, milliseconds.
    pub cold_ms: f64,
    /// Warm controller wall time over the stream, milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// Whole-instance solves the warm side answered from the memo.
    pub memo_hits: u64,
    /// Whole-instance solves the warm side actually ran.
    pub memo_misses: u64,
    /// Per-ingress dependency graphs reused from the warm cache.
    pub depgraphs_reused: u64,
    /// Per-ingress candidate sets reused from the warm cache.
    pub candidates_reused: u64,
    /// True iff warm placement + dataplane tables matched cold after
    /// every epoch.
    pub identical: bool,
}

/// The benchmark scenarios: ClassBench firewall policies at 256 / 512 /
/// 1k total rules on a k=4 fat-tree, capacities calibrated so every
/// instance is feasible. Smoke mode keeps only the smallest.
pub fn scenarios(smoke: bool) -> Vec<(String, ScenarioConfig)> {
    let mk = |ingresses, rules_per_policy, capacity| ScenarioConfig {
        k: 4,
        ingresses,
        paths_per_ingress: 2,
        rules_per_policy,
        shared_rules: 0,
        capacity,
        seed: 7,
    };
    let mut out = vec![("classbench-256".to_string(), mk(8, 32, 100))];
    if !smoke {
        out.push(("classbench-512".to_string(), mk(8, 64, 120)));
        out.push(("classbench-1k".to_string(), mk(16, 64, 150)));
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// Builds the §IV-E update stream for an instance: `rounds` identical
/// checkpoint → modify → re-solve → rollback rounds. The modifications
/// flip the first rule's action at the first two ingresses, so two
/// policies go dirty per round while the rest stay fingerprint-clean.
fn update_stream(instance: &flowplace_core::Instance, rounds: usize) -> Vec<Event> {
    let mut modifies = Vec::new();
    for (ingress, policy) in instance.policies().take(2) {
        let old = &policy.rules()[0];
        let flipped = match old.action() {
            flowplace_acl::Action::Permit => flowplace_acl::Action::Drop,
            flowplace_acl::Action::Drop => flowplace_acl::Action::Permit,
        };
        modifies.push(Event::ModifyRule {
            ingress,
            rule: flowplace_acl::RuleId(0),
            replacement: flowplace_acl::Rule::new(*old.match_field(), flipped, old.priority()),
        });
    }
    let mut events = Vec::new();
    for _ in 0..rounds {
        events.push(Event::Checkpoint);
        events.extend(modifies.iter().cloned());
        events.push(Event::Solve);
        events.push(Event::Rollback);
    }
    events
}

/// Runs the full benchmark and returns one row per scenario.
///
/// # Panics
///
/// Panics if the warm controller's placement or dataplane ever diverges
/// from the cold controller's — the warm path's correctness contract.
pub fn run(cfg: &IncrementalConfig) -> Vec<IncrementalRow> {
    scenarios(cfg.smoke)
        .into_iter()
        .map(|(name, scenario)| run_one(cfg, &name, &scenario))
        .collect()
}

fn controller(instance: flowplace_core::Instance, warm: WarmConfig) -> Controller {
    Controller::with_instance(
        instance,
        CtrlOptions {
            batch_size: 1,
            warm,
            ..CtrlOptions::default()
        },
    )
    .expect("benchmark scenarios are feasible")
}

fn run_one(cfg: &IncrementalConfig, name: &str, scenario: &ScenarioConfig) -> IncrementalRow {
    let instance = build_instance(scenario);
    let events = update_stream(&instance, cfg.rounds.max(1));

    let cold_cfg = WarmConfig {
        enabled: false,
        ..WarmConfig::default()
    };
    let mut cold = controller(instance.clone(), cold_cfg);
    let mut warm = controller(instance.clone(), WarmConfig::default());

    // Lockstep: the same event goes to both sides, each side's epoch is
    // timed separately, and the deployed state is compared after every
    // epoch. Comparison time is outside both timers.
    let mut cold_total = Duration::ZERO;
    let mut warm_total = Duration::ZERO;
    let mut identical = true;
    for event in events {
        cold.submit(event.clone()).expect("cold queue has room");
        warm.submit(event).expect("warm queue has room");
        let t0 = Instant::now();
        cold.run_to_idle().expect("cold epoch runs");
        cold_total += t0.elapsed();
        let t1 = Instant::now();
        warm.run_to_idle().expect("warm epoch runs");
        warm_total += t1.elapsed();
        let same = warm.placement() == cold.placement()
            && warm.dataplane().dump() == cold.dataplane().dump();
        assert!(same, "{name}: warm diverged from cold");
        identical &= same;
    }

    let stats = warm.stats();
    IncrementalRow {
        scenario: name.to_string(),
        rules: instance.total_policy_rules(),
        epochs: stats.epochs,
        rounds: cfg.rounds.max(1),
        cold_ms: ms(cold_total),
        warm_ms: ms(warm_total),
        speedup: ms(cold_total) / ms(warm_total),
        memo_hits: stats.warm_memo_hits,
        memo_misses: stats.warm_memo_misses,
        depgraphs_reused: stats.warm_depgraphs_reused,
        candidates_reused: stats.warm_candidates_reused,
        identical,
    }
}

/// Geometric mean of the per-scenario speedups — the headline number.
pub fn geomean_speedup(rows: &[IncrementalRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.speedup.max(1e-9).ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// Renders the rows as the `BENCH_incremental.json` document.
pub fn to_json(cfg: &IncrementalConfig, rows: &[IncrementalRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(out, "  \"rounds\": {},", cfg.rounds.max(1));
    let _ = writeln!(
        out,
        "  \"geomean_speedup\": {},",
        json_num(geomean_speedup(rows))
    );
    let _ = writeln!(
        out,
        "  \"identical\": {},",
        rows.iter().all(|r| r.identical)
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(out, "      \"epochs\": {},", r.epochs);
        let _ = writeln!(out, "      \"rounds\": {},", r.rounds);
        let _ = writeln!(out, "      \"cold_ms\": {},", json_num(r.cold_ms));
        let _ = writeln!(out, "      \"warm_ms\": {},", json_num(r.warm_ms));
        let _ = writeln!(out, "      \"speedup\": {},", json_num(r.speedup));
        let _ = writeln!(out, "      \"memo_hits\": {},", r.memo_hits);
        let _ = writeln!(out, "      \"memo_misses\": {},", r.memo_misses);
        let _ = writeln!(out, "      \"depgraphs_reused\": {},", r.depgraphs_reused);
        let _ = writeln!(out, "      \"candidates_reused\": {},", r.candidates_reused);
        let _ = writeln!(out, "      \"identical\": {}", r.identical);
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[IncrementalRow]) -> String {
    let mut out = format!(
        "{:<16} {:>6} {:>7} {:>11} {:>11} {:>8} {:>10} {:>10} {:>10}\n",
        "scenario",
        "rules",
        "epochs",
        "cold ms",
        "warm ms",
        "speedup",
        "memo h/m",
        "deps reuse",
        "identical"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>7} {:>11.2} {:>11.2} {:>7.1}x {:>10} {:>10} {:>10}",
            r.scenario,
            r.rules,
            r.epochs,
            r.cold_ms,
            r.warm_ms,
            r.speedup,
            format!("{}/{}", r.memo_hits, r.memo_misses),
            r.depgraphs_reused,
            r.identical
        );
    }
    let _ = writeln!(out, "geomean speedup: {:.1}x", geomean_speedup(rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_incremental_json;

    fn sample_row() -> IncrementalRow {
        IncrementalRow {
            scenario: "classbench-256".into(),
            rules: 256,
            epochs: 30,
            rounds: 6,
            cold_ms: 600.0,
            warm_ms: 110.0,
            speedup: 600.0 / 110.0,
            memo_hits: 5,
            memo_misses: 1,
            depgraphs_reused: 36,
            candidates_reused: 36,
            identical: true,
        }
    }

    #[test]
    fn json_document_passes_schema_check() {
        let cfg = IncrementalConfig::default();
        let doc = to_json(&cfg, &[sample_row()]);
        validate_incremental_json(&doc).expect("emitted document is schema-valid");
    }

    #[test]
    fn geomean_is_the_geometric_mean() {
        let mut a = sample_row();
        a.speedup = 2.0;
        let mut b = sample_row();
        b.speedup = 8.0;
        let g = geomean_speedup(&[a, b]);
        assert!((g - 4.0).abs() < 1e-9, "got {g}");
        assert_eq!(geomean_speedup(&[]), 0.0);
    }

    #[test]
    fn smoke_run_emits_valid_json_and_stays_identical() {
        let cfg = IncrementalConfig {
            rounds: 3,
            smoke: true,
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].identical, "warm diverged from cold");
        assert!(rows[0].memo_hits > 0, "the memo never fired: {rows:?}");
        let doc = to_json(&cfg, &rows);
        validate_incremental_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn table_lists_every_scenario() {
        let t = rows_table(&[sample_row()]);
        assert!(t.contains("classbench-256"));
        assert!(t.contains("geomean speedup"));
    }
}

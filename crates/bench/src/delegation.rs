//! Machine-readable flow-delegation benchmark (`BENCH_delegation.json`).
//!
//! Measures what the delegation rung buys under TCAM pressure: each
//! ClassBench scenario is solved and deployed once, then hit with a
//! capacity-revocation storm — the first `pct`% of every route's
//! switches (ingress side first) are revoked to zero — twice, under
//! the identical schedule: once with the rung enabled and once with it
//! disabled. Pressure is swept by deepening the storm along the
//! routes: 25% takes out the edge layer under every ingress, 100%
//! takes out every on-route switch, leaving off-route neighbors as the
//! only TCAM left.
//!
//! Reported per (scenario, pressure) cell: how many ingresses went
//! drop-all in each arm, the **avoidance rate** (victims the rung saved
//! from drop-all), and the **delegated-rule overhead** (entries parked
//! on delegates plus the redirect stubs the anchors carry).
//!
//! Fail-closed is part of the measurement contract: both arms must end
//! every run with a green audit and zero `failclosed_violations` (the
//! schema validator enforces the field), and the rung arm must never
//! fail *more* closed than the baseline — strictly less in aggregate.
//!
//! Schema stability is enforced by
//! [`crate::report::validate_delegation_json`]; bump [`SCHEMA`] when
//! the shape changes.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

use flowplace_core::PlacementOptions;
use flowplace_ctrl::{Controller, CtrlOptions, Event};
use flowplace_topo::SwitchId;

use crate::cache::scenarios;
use crate::scenario::build_instance;

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.delegation.v1";

/// Storm depth sweep: percent of each route's switches (ingress side
/// first) revoked to zero.
pub const PRESSURE_PCTS: [f64; 4] = [25.0, 50.0, 75.0, 100.0];

/// Runner parameters (CLI flags of the `delegation_bench` binary).
#[derive(Clone, Debug, Default)]
pub struct DelegationBenchConfig {
    /// Smoke mode: smallest scenario, two pressure points — used by CI
    /// to validate the JSON schema cheaply.
    pub smoke: bool,
}

/// One (scenario, pressure) measurement: the same revocation storm run
/// with and without the delegation rung.
#[derive(Clone, Debug)]
pub struct DelegationRow {
    /// Scenario label (`classbench-256` …).
    pub scenario: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Storm depth, in percent of each route's switches.
    pub pressure_pct: f64,
    /// Ingresses whose routes the storm touched (all of them — the
    /// storm is network-wide; the depth is what varies).
    pub victims: usize,
    /// Distinct switches the storm revoked.
    pub revoked_switches: usize,
    /// Ingresses fail-closed (drop-all) with the rung disabled.
    pub dropall_baseline: u64,
    /// Ingresses fail-closed (drop-all) with the rung enabled.
    pub dropall_delegated: u64,
    /// `dropall_baseline - dropall_delegated`.
    pub avoided: u64,
    /// `avoided / dropall_baseline` (0.0 when the baseline never
    /// dropped — nothing to avoid).
    pub avoidance_rate: f64,
    /// Delegations recorded by the rung arm.
    pub delegations: u64,
    /// Placement entries parked on delegate switches at the end.
    pub delegated_entries: u64,
    /// Redirect stubs installed on anchors (reserved bank).
    pub stub_entries: u64,
    /// `delegated_entries` as a percentage of all placed entries.
    pub overhead_pct: f64,
    /// Fail-closed violations across both arms (must be zero;
    /// validated).
    pub failclosed_violations: u64,
}

/// Pressure points for a run (smoke keeps the interesting half).
pub fn pressures(smoke: bool) -> Vec<f64> {
    if smoke {
        vec![50.0, 100.0]
    } else {
        PRESSURE_PCTS.to_vec()
    }
}

/// Runs the full benchmark: one deployed controller per scenario,
/// cloned across every (pressure, arm) combination so both arms see the
/// byte-identical starting state and storm schedule.
///
/// # Panics
///
/// Panics if a scenario is infeasible or either arm of any cell ends
/// with a failing fail-closed audit — delegation's correctness
/// contract.
pub fn run(cfg: &DelegationBenchConfig) -> Vec<DelegationRow> {
    run_with_progress(cfg, &mut |_| {})
}

/// [`run`] with a progress sink: one message per deployed scenario and
/// per finished storm arm, so the long sweeps stay observable from the
/// binary without the library printing anything itself.
pub fn run_with_progress(
    cfg: &DelegationBenchConfig,
    progress: &mut dyn FnMut(&str),
) -> Vec<DelegationRow> {
    // Same solver posture as the cache bench: greedy warm start plus a
    // wall-clock budget keeps the classbench-4k initial solve at
    // seconds; the storm re-solves ride the warm path after that.
    let mut placement = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    placement.mip.time_limit = Some(Duration::from_secs(10));
    let options = CtrlOptions {
        placement,
        ..CtrlOptions::default()
    };
    let mut rows = Vec::new();
    for (name, scenario) in scenarios(cfg.smoke) {
        let instance = build_instance(&scenario);
        let base = Controller::with_instance(instance.clone(), options.clone())
            .expect("benchmark scenarios are feasible");
        progress(&format!("{name}: deployed"));
        for pct in pressures(cfg.smoke) {
            let mut revoked: BTreeSet<SwitchId> = BTreeSet::new();
            for r in instance.routes().iter() {
                let depth =
                    ((r.switches.len() as f64 * pct / 100.0).ceil() as usize).min(r.switches.len());
                revoked.extend(r.switches.iter().take(depth).copied());
            }
            // The whole storm is submitted up front and drained in
            // batched epochs: identical deterministic schedule for both
            // arms, without paying a full degrade cycle per revoked
            // switch on the large scenarios.
            let mut storm = |delegation: bool| -> Controller {
                let mut ctrl = base.clone();
                ctrl.set_delegation_enabled(delegation);
                for &s in &revoked {
                    ctrl.submit(Event::CapacityChange {
                        switch: s,
                        capacity: 0,
                    })
                    .expect("storm event fits the queue");
                }
                ctrl.run_to_idle()
                    .unwrap_or_else(|e| panic!("{name} {pct}%: storm epoch: {e}"));
                assert_eq!(
                    ctrl.stats().failclosed_violations,
                    0,
                    "{name} {pct}% (delegation={delegation}): violation"
                );
                ctrl.fail_closed_audit().unwrap_or_else(|e| {
                    panic!("{name} {pct}% (delegation={delegation}): audit: {e}")
                });
                progress(&format!(
                    "{name} {pct}% delegation={delegation}: {} drop-all",
                    ctrl.safe_mode_ingresses().len()
                ));
                ctrl
            };
            let baseline = storm(false);
            let delegated = storm(true);
            let dropall_baseline = baseline.safe_mode_ingresses().len() as u64;
            let dropall_delegated = delegated.safe_mode_ingresses().len() as u64;
            let avoided = dropall_baseline.saturating_sub(dropall_delegated);
            let total_entries: usize = delegated
                .placement()
                .iter()
                .map(|(_, switches)| switches.len())
                .sum();
            let delegated_entries = delegated.delegated_entries() as u64;
            rows.push(DelegationRow {
                scenario: name.clone(),
                rules: instance.total_policy_rules(),
                pressure_pct: pct,
                victims: scenario.ingresses,
                revoked_switches: revoked.len(),
                dropall_baseline,
                dropall_delegated,
                avoided,
                avoidance_rate: if dropall_baseline == 0 {
                    0.0
                } else {
                    avoided as f64 / dropall_baseline as f64
                },
                delegations: delegated.stats().delegations,
                delegated_entries,
                stub_entries: delegated.stats().delegation_stub_entries,
                overhead_pct: if total_entries == 0 {
                    0.0
                } else {
                    delegated_entries as f64 * 100.0 / total_entries as f64
                },
                failclosed_violations: baseline.stats().failclosed_violations
                    + delegated.stats().failclosed_violations,
            });
        }
    }
    rows
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0000".to_string()
    }
}

/// Renders the rows as the `BENCH_delegation.json` document.
pub fn to_json(rows: &[DelegationRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(
        out,
        "  \"dropall_baseline\": {},",
        rows.iter().map(|r| r.dropall_baseline).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"dropall_delegated\": {},",
        rows.iter().map(|r| r.dropall_delegated).sum::<u64>()
    );
    let _ = writeln!(
        out,
        "  \"failclosed_violations\": {},",
        rows.iter().map(|r| r.failclosed_violations).sum::<u64>()
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(out, "      \"pressure_pct\": {},", json_num(r.pressure_pct));
        let _ = writeln!(out, "      \"victims\": {},", r.victims);
        let _ = writeln!(out, "      \"revoked_switches\": {},", r.revoked_switches);
        let _ = writeln!(out, "      \"dropall_baseline\": {},", r.dropall_baseline);
        let _ = writeln!(out, "      \"dropall_delegated\": {},", r.dropall_delegated);
        let _ = writeln!(out, "      \"avoided\": {},", r.avoided);
        let _ = writeln!(
            out,
            "      \"avoidance_rate\": {},",
            json_num(r.avoidance_rate)
        );
        let _ = writeln!(out, "      \"delegations\": {},", r.delegations);
        let _ = writeln!(out, "      \"delegated_entries\": {},", r.delegated_entries);
        let _ = writeln!(out, "      \"stub_entries\": {},", r.stub_entries);
        let _ = writeln!(out, "      \"overhead_pct\": {},", json_num(r.overhead_pct));
        let _ = writeln!(
            out,
            "      \"failclosed_violations\": {}",
            r.failclosed_violations
        );
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[DelegationRow]) -> String {
    let mut out = format!(
        "{:<16} {:>9} {:>8} {:>8} {:>9} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9}\n",
        "scenario",
        "press %",
        "victims",
        "revoked",
        "drop:off",
        "drop:on",
        "avoided",
        "avoid%",
        "delegs",
        "stubs",
        "overhd %"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>8.1}% {:>8} {:>8} {:>9} {:>9} {:>8} {:>6.1}% {:>8} {:>8} {:>8.2}%",
            r.scenario,
            r.pressure_pct,
            r.victims,
            r.revoked_switches,
            r.dropall_baseline,
            r.dropall_delegated,
            r.avoided,
            r.avoidance_rate * 100.0,
            r.delegations,
            r.stub_entries,
            r.overhead_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_delegation_json;

    fn sample_row() -> DelegationRow {
        DelegationRow {
            scenario: "classbench-256".into(),
            rules: 256,
            pressure_pct: 50.0,
            victims: 4,
            revoked_switches: 10,
            dropall_baseline: 4,
            dropall_delegated: 1,
            avoided: 3,
            avoidance_rate: 0.75,
            delegations: 3,
            delegated_entries: 96,
            stub_entries: 6,
            overhead_pct: 37.5,
            failclosed_violations: 0,
        }
    }

    #[test]
    fn json_document_passes_schema_check() {
        let doc = to_json(&[sample_row()]);
        validate_delegation_json(&doc).expect("emitted document is schema-valid");
    }

    #[test]
    fn validator_rejects_failclosed_violations() {
        let mut bad = sample_row();
        bad.failclosed_violations = 1;
        let doc = to_json(&[bad]);
        assert!(validate_delegation_json(&doc).is_err());
    }

    #[test]
    fn validator_requires_strict_dropall_reduction() {
        let mut row = sample_row();
        row.dropall_delegated = row.dropall_baseline;
        row.avoided = 0;
        row.avoidance_rate = 0.0;
        let doc = to_json(&[row]);
        assert!(
            validate_delegation_json(&doc).is_err(),
            "a rung that saves nothing must not validate"
        );
    }

    #[test]
    fn smoke_run_shows_strict_avoidance() {
        let cfg = DelegationBenchConfig { smoke: true };
        let rows = run(&cfg);
        assert_eq!(rows.len(), pressures(true).len());
        assert!(rows.iter().all(|r| r.failclosed_violations == 0));
        assert!(
            rows.iter()
                .all(|r| r.dropall_delegated <= r.dropall_baseline),
            "the rung made degradation worse: {rows:?}"
        );
        let doc = to_json(&rows);
        validate_delegation_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn table_lists_every_scenario() {
        let t = rows_table(&[sample_row()]);
        assert!(t.contains("classbench-256"));
        assert!(t.contains("75.0%"));
    }
}

//! Machine-readable cache-tier benchmark (`BENCH_cache.json`).
//!
//! Sweeps the TCAM-as-cache tier over the ClassBench scenarios: each
//! scenario is solved and deployed once, then the *same* Zipf flow
//! stream (seeded, deterministic — see [`flowplace_traffic`]) is run
//! against per-switch cache capacities of 12.5 / 25 / 50 / 100 % of the
//! scenario's TCAM capacity, under both eviction policies. Reported per
//! cell: hit rate, and the controller load the misses induce — warm
//! re-solve count, miss batches, and the punt latency charged to the
//! virtual clock.
//!
//! Dependency safety is part of the measurement contract: the
//! `dep_violations` field must be zero in every row (the schema
//! validator enforces it), and the run aborts if the post-stream audits
//! disagree.
//!
//! Schema stability is enforced by [`crate::report::validate_cache_json`];
//! bump [`SCHEMA`] when the shape changes.

use std::fmt::Write as _;
use std::time::Duration;

use flowplace_core::PlacementOptions;
use flowplace_ctrl::{CacheConfig, CachePolicy, Controller, CtrlOptions};
use flowplace_traffic::{generate, TrafficConfig};

use crate::scenario::{build_instance, ScenarioConfig};

/// Schema tag stamped into the JSON document.
pub const SCHEMA: &str = "flowplace.bench.cache.v1";

/// Cache capacity sweep, in percent of the scenario's switch capacity.
pub const CAPACITY_PCTS: [f64; 4] = [12.5, 25.0, 50.0, 100.0];

/// Runner parameters (CLI flags of the `cache_bench` binary).
#[derive(Clone, Debug)]
pub struct CacheBenchConfig {
    /// Flow events per simulated second.
    pub rate: u64,
    /// Stream length in virtual milliseconds.
    pub duration_ms: u64,
    /// Zipf exponent of the flow popularity draw.
    pub zipf: f64,
    /// Smoke mode: short stream, smallest scenario only — used by CI to
    /// validate the JSON schema cheaply.
    pub smoke: bool,
}

impl Default for CacheBenchConfig {
    fn default() -> Self {
        CacheBenchConfig {
            rate: 20_000,
            duration_ms: 250,
            zipf: 1.1,
            smoke: false,
        }
    }
}

/// One (scenario, capacity, policy) measurement.
#[derive(Clone, Debug)]
pub struct CacheRow {
    /// Scenario label (`classbench-256` …).
    pub scenario: String,
    /// Eviction policy label (`lru` / `depfreq`).
    pub policy: String,
    /// Total policy rules in the instance.
    pub rules: usize,
    /// Per-switch resident entries allowed.
    pub cache_capacity: usize,
    /// The sweep point, in percent of the scenario's TCAM capacity.
    pub capacity_pct: f64,
    /// Flow events driven through the tier.
    pub flows: u64,
    /// Per-switch cache lookups.
    pub lookups: u64,
    /// Lookups answered by a resident entry.
    pub hits: u64,
    /// Lookups punted to the controller.
    pub misses: u64,
    /// `hits / lookups` (1.0 for an empty stream).
    pub hit_rate: f64,
    /// Entries made resident (dependency pulls included).
    pub inserts: u64,
    /// Entries evicted (cascades included).
    pub evictions: u64,
    /// Warm re-solves triggered by miss batches (controller load).
    pub resolves: u64,
    /// Miss batches flushed through the controller.
    pub miss_batches: u64,
    /// Virtual milliseconds of punt latency charged to the stream.
    pub miss_latency_ms: u64,
    /// Dependency-safety violations (must be zero; validated).
    pub dep_violations: u64,
}

/// The benchmark scenarios: ClassBench firewall policies at 256 / 1k /
/// 4k total rules on a k=4 fat-tree. Smoke mode keeps only the
/// smallest.
pub fn scenarios(smoke: bool) -> Vec<(String, ScenarioConfig)> {
    let mk = |ingresses, rules_per_policy, capacity| ScenarioConfig {
        k: 4,
        ingresses,
        paths_per_ingress: 2,
        rules_per_policy,
        shared_rules: 0,
        capacity,
        seed: 7,
    };
    let mut out = vec![("classbench-256".to_string(), mk(8, 32, 100))];
    if !smoke {
        out.push(("classbench-1k".to_string(), mk(16, 64, 150)));
        out.push(("classbench-4k".to_string(), mk(16, 256, 500)));
    }
    out
}

/// The deterministic flow stream for one scenario: Zipf-skewed over the
/// scenario's tenant ingresses, header width matching the ClassBench
/// generator, seeded from the scenario seed.
pub fn traffic_for(cfg: &CacheBenchConfig, scenario: &ScenarioConfig) -> TrafficConfig {
    TrafficConfig {
        seed: scenario.seed,
        rate: if cfg.smoke { 2_000 } else { cfg.rate },
        duration_ms: if cfg.smoke { 100 } else { cfg.duration_ms },
        zipf: cfg.zipf,
        ingresses: scenario.ingresses,
        width: 16,
        flows_per_ingress: 64,
        flowlet_len: 4,
        burst: None,
    }
}

/// Runs the full benchmark: one deployed controller per scenario,
/// cloned across every (capacity, policy) sweep point.
///
/// # Panics
///
/// Panics if a scenario is infeasible or any sweep point ends with a
/// failing dependency or fail-closed audit — the cache tier's
/// correctness contract.
pub fn run(cfg: &CacheBenchConfig) -> Vec<CacheRow> {
    // Same solver posture as the pipeline bench: a greedy warm start
    // plus a wall-clock budget keeps the classbench-4k initial solve at
    // seconds (feasible incumbent) instead of exhaustive branch &
    // bound. Every miss-batch re-solve after that is a placement-memo
    // hit, so only the per-scenario initial solve pays this cost.
    let mut placement = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    placement.mip.time_limit = Some(Duration::from_secs(10));
    let options = CtrlOptions {
        placement,
        ..CtrlOptions::default()
    };
    let mut rows = Vec::new();
    for (name, scenario) in scenarios(cfg.smoke) {
        let instance = build_instance(&scenario);
        let base = Controller::with_instance(instance.clone(), options.clone())
            .expect("benchmark scenarios are feasible");
        let flows = generate(&traffic_for(cfg, &scenario));
        for pct in CAPACITY_PCTS {
            let capacity = ((scenario.capacity as f64 * pct / 100.0) as usize).max(1);
            for policy in [CachePolicy::Lru, CachePolicy::DepFreq] {
                let mut ctrl = base.clone();
                ctrl.set_cache_config(CacheConfig {
                    enabled: true,
                    capacity,
                    policy,
                    ..CacheConfig::default()
                });
                let fr = ctrl.process_flows(&flows);
                ctrl.cache()
                    .audit()
                    .unwrap_or_else(|e| panic!("{name} {policy} cap={capacity}: {e}"));
                ctrl.cache_fail_closed_audit()
                    .unwrap_or_else(|e| panic!("{name} {policy} cap={capacity}: {e}"));
                rows.push(CacheRow {
                    scenario: name.clone(),
                    policy: policy.label().to_string(),
                    rules: instance.total_policy_rules(),
                    cache_capacity: capacity,
                    capacity_pct: pct,
                    flows: fr.flows,
                    lookups: fr.lookups,
                    hits: fr.hits,
                    misses: fr.misses,
                    hit_rate: fr.hit_rate(),
                    inserts: fr.inserts,
                    evictions: fr.evictions,
                    resolves: fr.resolves,
                    miss_batches: fr.miss_batches,
                    miss_latency_ms: fr.miss_latency_ms,
                    dep_violations: fr.dep_violations,
                });
            }
        }
    }
    rows
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0000".to_string()
    }
}

/// Renders the rows as the `BENCH_cache.json` document.
pub fn to_json(cfg: &CacheBenchConfig, rows: &[CacheRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
    let _ = writeln!(out, "  \"rate\": {},", cfg.rate);
    let _ = writeln!(out, "  \"duration_ms\": {},", cfg.duration_ms);
    let _ = writeln!(out, "  \"zipf\": {},", json_num(cfg.zipf));
    let _ = writeln!(
        out,
        "  \"dep_violations\": {},",
        rows.iter().map(|r| r.dep_violations).sum::<u64>()
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"scenario\": {},", json_string(&r.scenario));
        let _ = writeln!(out, "      \"policy\": {},", json_string(&r.policy));
        let _ = writeln!(out, "      \"rules\": {},", r.rules);
        let _ = writeln!(out, "      \"cache_capacity\": {},", r.cache_capacity);
        let _ = writeln!(out, "      \"capacity_pct\": {},", json_num(r.capacity_pct));
        let _ = writeln!(out, "      \"flows\": {},", r.flows);
        let _ = writeln!(out, "      \"lookups\": {},", r.lookups);
        let _ = writeln!(out, "      \"hits\": {},", r.hits);
        let _ = writeln!(out, "      \"misses\": {},", r.misses);
        let _ = writeln!(out, "      \"hit_rate\": {},", json_num(r.hit_rate));
        let _ = writeln!(out, "      \"inserts\": {},", r.inserts);
        let _ = writeln!(out, "      \"evictions\": {},", r.evictions);
        let _ = writeln!(out, "      \"resolves\": {},", r.resolves);
        let _ = writeln!(out, "      \"miss_batches\": {},", r.miss_batches);
        let _ = writeln!(out, "      \"miss_latency_ms\": {},", r.miss_latency_ms);
        let _ = writeln!(out, "      \"dep_violations\": {}", r.dep_violations);
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// ASCII summary for the terminal.
pub fn rows_table(rows: &[CacheRow]) -> String {
    let mut out = format!(
        "{:<16} {:<8} {:>6} {:>8} {:>7} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}\n",
        "scenario",
        "policy",
        "cap",
        "cap %",
        "flows",
        "hits",
        "misses",
        "hit %",
        "resolves",
        "punt ms",
        "depviol"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:<8} {:>6} {:>7.1}% {:>7} {:>8} {:>8} {:>7.1}% {:>9} {:>8} {:>8}",
            r.scenario,
            r.policy,
            r.cache_capacity,
            r.capacity_pct,
            r.flows,
            r.hits,
            r.misses,
            r.hit_rate * 100.0,
            r.resolves,
            r.miss_latency_ms,
            r.dep_violations
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_cache_json;

    fn sample_row() -> CacheRow {
        CacheRow {
            scenario: "classbench-256".into(),
            policy: "lru".into(),
            rules: 256,
            cache_capacity: 25,
            capacity_pct: 25.0,
            flows: 5000,
            lookups: 9000,
            hits: 7000,
            misses: 800,
            hit_rate: 7000.0 / 9000.0,
            inserts: 120,
            evictions: 40,
            resolves: 90,
            miss_batches: 100,
            miss_latency_ms: 800,
            dep_violations: 0,
        }
    }

    #[test]
    fn json_document_passes_schema_check() {
        let cfg = CacheBenchConfig::default();
        let doc = to_json(&cfg, &[sample_row()]);
        validate_cache_json(&doc).expect("emitted document is schema-valid");
    }

    #[test]
    fn validator_rejects_dependency_violations() {
        let cfg = CacheBenchConfig::default();
        let mut bad = sample_row();
        bad.dep_violations = 1;
        let doc = to_json(&cfg, &[bad]);
        assert!(validate_cache_json(&doc).is_err());
    }

    #[test]
    fn smoke_run_emits_valid_json_with_safe_evictions() {
        let cfg = CacheBenchConfig {
            smoke: true,
            ..CacheBenchConfig::default()
        };
        let rows = run(&cfg);
        // Smoke: one scenario, full capacity x policy grid.
        assert_eq!(rows.len(), CAPACITY_PCTS.len() * 2);
        assert!(rows.iter().all(|r| r.dep_violations == 0));
        assert!(
            rows.iter().any(|r| r.hits > 0),
            "the stream never hit the cache: {rows:?}"
        );
        // Larger caches never hit less on the same stream and policy.
        for policy in ["lru", "depfreq"] {
            let series: Vec<&CacheRow> = rows.iter().filter(|r| r.policy == policy).collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].hit_rate >= pair[0].hit_rate - 1e-9,
                    "{policy}: hit rate fell as capacity grew: {pair:?}"
                );
            }
        }
        let doc = to_json(&cfg, &rows);
        validate_cache_json(&doc).expect("smoke document is schema-valid");
    }

    #[test]
    fn table_lists_every_scenario() {
        let t = rows_table(&[sample_row()]);
        assert!(t.contains("classbench-256"));
        assert!(t.contains("lru"));
    }
}

//! Network topology model and generators for `flowplace`.
//!
//! Provides the data-plane graph the rule-placement optimizer works over:
//! switches with TCAM rule capacities, links, and network entry (ingress /
//! egress) ports. Includes the Fat-Tree generator used by the paper's
//! evaluation (Al-Fares et al., SIGCOMM'08) plus simple linear / star / tree
//! topologies for testing.
//!
//! # Example
//!
//! ```
//! use flowplace_topo::Topology;
//!
//! let topo = Topology::fat_tree(4);
//! assert_eq!(topo.switch_count(), 20);      // 5k²/4
//! assert_eq!(topo.entry_port_count(), 16);  // k³/4 hosts
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod fattree;
mod graph;

pub use builder::TopologyBuilder;
pub use graph::{EntryPort, EntryPortId, Switch, SwitchId, Topology, TopologyError};

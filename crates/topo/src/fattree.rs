//! The k-ary Fat-Tree topology (Al-Fares, Loukissas, Vahdat — SIGCOMM'08).
//!
//! A `k`-ary fat-tree has:
//!
//! * `k` pods, each with `k/2` edge switches and `k/2` aggregation switches;
//! * `(k/2)²` core switches;
//! * `5k²/4` switches total and `k³/4` host positions (each edge switch
//!   serves `k/2` hosts).
//!
//! Every host position becomes a network [`EntryPort`](crate::EntryPort),
//! which is where the paper attaches the per-ingress firewall policies.
//!
//! Switch id layout (deterministic):
//!
//! * core switches: ids `0 .. (k/2)²`, named `core-<i>-<j>`;
//! * per pod `p`: aggregation switches `agg-<p>-<a>` then edge switches
//!   `edge-<p>-<e>`.

use crate::{SwitchId, Topology, TopologyBuilder};

/// Builds the `k`-ary fat-tree. See the module docs for the layout.
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity k={k} must be even and >= 2"
    );
    let half = k / 2;
    let mut b = TopologyBuilder::new();

    // Core switches, in a half×half grid: core[i][j].
    let mut core = vec![vec![SwitchId(0); half]; half];
    for (i, row) in core.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = b.add_switch(format!("core-{i}-{j}"), usize::MAX);
        }
    }

    for pod in 0..k {
        // Aggregation switches of this pod.
        let aggs: Vec<SwitchId> = (0..half)
            .map(|a| b.add_switch(format!("agg-{pod}-{a}"), usize::MAX))
            .collect();
        // Edge switches of this pod.
        let edges: Vec<SwitchId> = (0..half)
            .map(|e| b.add_switch(format!("edge-{pod}-{e}"), usize::MAX))
            .collect();
        // Full bipartite connection edge <-> agg inside the pod.
        for &agg in &aggs {
            for &edge in &edges {
                b.add_link(agg, edge).expect("valid pod link");
            }
        }
        // Aggregation switch `a` connects to core row `a` (all columns).
        for (a, &agg) in aggs.iter().enumerate() {
            for &c in &core[a] {
                b.add_link(agg, c).expect("valid core link");
            }
        }
        // Each edge switch hosts k/2 entry ports.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                b.add_entry_port(format!("host-{pod}-{e}-{h}"), edge)
                    .expect("valid host port");
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for k in [2usize, 4, 6, 8] {
            let t = fat_tree(k);
            assert_eq!(t.switch_count(), 5 * k * k / 4, "switches for k={k}");
            assert_eq!(t.entry_port_count(), k * k * k / 4, "hosts for k={k}");
            assert!(t.is_connected(), "connected for k={k}");
        }
    }

    #[test]
    fn link_count_matches_formula() {
        // Each pod: (k/2)² edge-agg links; k/2 aggs × k/2 core links each.
        for k in [4usize, 6] {
            let t = fat_tree(k);
            let half = k / 2;
            let expected = k * (half * half) + k * half * half;
            assert_eq!(t.link_count(), expected);
        }
    }

    #[test]
    fn degree_structure() {
        let k = 4;
        let t = fat_tree(k);
        // Core switches connect to one agg in every pod: degree k.
        for (id, s) in t.switches() {
            if s.name.starts_with("core") {
                assert_eq!(t.neighbors(id).len(), k, "core degree");
            } else if s.name.starts_with("agg") {
                // k/2 edges + k/2 cores.
                assert_eq!(t.neighbors(id).len(), k, "agg degree");
            } else {
                // Edge: k/2 aggs (hosts are entry ports, not switches).
                assert_eq!(t.neighbors(id).len(), k / 2, "edge degree");
            }
        }
    }

    #[test]
    fn hosts_attach_to_edge_switches() {
        let t = fat_tree(4);
        for (_, p) in t.entry_ports() {
            assert!(t.switch(p.switch).name.starts_with("edge"));
        }
    }

    #[test]
    fn diameter_is_six_hops_of_switches() {
        // Max switch-to-switch distance in a fat-tree is 4
        // (edge → agg → core → agg → edge).
        let t = fat_tree(4);
        let d = t.distances_from(SwitchId(4)); // first agg of pod 0
        let max = d.iter().max().unwrap();
        assert!(*max <= 4);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_panics() {
        let _ = fat_tree(3);
    }
}

//! Core topology data structures.

use std::fmt;

/// Identifier of a switch `s_i` in the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SwitchId(pub usize);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a network entry (ingress/egress) port `l_i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EntryPortId(pub usize);

impl fmt::Display for EntryPortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A switch: a name, a TCAM rule capacity `C_i`, and its adjacency.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Switch {
    /// Human-readable name (e.g. `"edge-2-1"` in a fat-tree).
    pub name: String,
    /// TCAM slots available for ACL rules on this switch.
    pub capacity: usize,
    pub(crate) neighbors: Vec<SwitchId>,
}

/// A network entry port: where packets enter or leave the network,
/// attached to exactly one switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryPort {
    /// Human-readable name (e.g. `"host-0"`).
    pub name: String,
    /// The switch this port is attached to.
    pub switch: SwitchId,
}

/// Error raised by topology validation or construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced switch id does not exist.
    UnknownSwitch(SwitchId),
    /// A link connects a switch to itself.
    SelfLoop(SwitchId),
    /// The same link was added twice.
    DuplicateLink(SwitchId, SwitchId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            TopologyError::SelfLoop(s) => write!(f, "self loop at {s}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}-{b}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The data-plane network `N`: switches with capacities, undirected links,
/// and entry ports.
///
/// Construct with [`TopologyBuilder`](crate::TopologyBuilder) or one of the
/// generators ([`Topology::fat_tree`], [`Topology::linear`],
/// [`Topology::star`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    pub(crate) switches: Vec<Switch>,
    pub(crate) entries: Vec<EntryPort>,
}

impl Topology {
    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of entry ports.
    pub fn entry_port_count(&self) -> usize {
        self.entries.len()
    }

    /// The switch with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0]
    }

    /// The entry port with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn entry_port(&self, id: EntryPortId) -> &EntryPort {
        &self.entries[id.0]
    }

    /// Iterates over `(SwitchId, &Switch)`.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &Switch)> {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (SwitchId(i), s))
    }

    /// Iterates over `(EntryPortId, &EntryPort)`.
    pub fn entry_ports(&self) -> impl Iterator<Item = (EntryPortId, &EntryPort)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (EntryPortId(i), e))
    }

    /// Neighbors of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: SwitchId) -> &[SwitchId] {
        &self.switches[id.0].neighbors
    }

    /// The ACL rule capacity `C_i` of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn capacity(&self, id: SwitchId) -> usize {
        self.switches[id.0].capacity
    }

    /// Sets the capacity of one switch.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_capacity(&mut self, id: SwitchId, capacity: usize) {
        self.switches[id.0].capacity = capacity;
    }

    /// Sets every switch's capacity to `capacity`.
    pub fn set_uniform_capacity(&mut self, capacity: usize) {
        for s in &mut self.switches {
            s.capacity = capacity;
        }
    }

    /// Per-switch capacities indexed by `SwitchId`.
    pub fn capacities(&self) -> Vec<usize> {
        self.switches.iter().map(|s| s.capacity).collect()
    }

    /// Total number of links (each undirected link counted once).
    pub fn link_count(&self) -> usize {
        self.switches
            .iter()
            .map(|s| s.neighbors.len())
            .sum::<usize>()
            / 2
    }

    /// True if every switch is reachable from switch 0 (or the network is
    /// empty).
    pub fn is_connected(&self) -> bool {
        if self.switches.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.switches.len()];
        let mut stack = vec![SwitchId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(s) = stack.pop() {
            for &n in &self.switches[s.0].neighbors {
                if !seen[n.0] {
                    seen[n.0] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.switches.len()
    }

    /// Hop distances from `from` to every switch (BFS); `usize::MAX` marks
    /// unreachable switches.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn distances_from(&self, from: SwitchId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.switches.len()];
        dist[from.0] = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for &n in &self.switches[s.0].neighbors {
                if dist[n.0] == usize::MAX {
                    dist[n.0] = dist[s.0] + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// A linear chain of `n` switches with an entry port at each end.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linear(n: usize) -> Topology {
        assert!(n >= 1, "linear topology needs at least one switch");
        let mut b = crate::TopologyBuilder::new();
        let ids: Vec<SwitchId> = (0..n)
            .map(|i| b.add_switch(format!("s{i}"), usize::MAX))
            .collect();
        for w in ids.windows(2) {
            b.add_link(w[0], w[1]).expect("valid chain link");
        }
        b.add_entry_port("in", ids[0]).expect("valid ingress");
        b.add_entry_port("out", ids[n - 1]).expect("valid egress");
        b.build()
    }

    /// A star: one hub switch connected to `leaves` leaf switches, with one
    /// entry port per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `leaves == 0`.
    pub fn star(leaves: usize) -> Topology {
        assert!(leaves >= 1, "star topology needs at least one leaf");
        let mut b = crate::TopologyBuilder::new();
        let hub = b.add_switch("hub", usize::MAX);
        for i in 0..leaves {
            let leaf = b.add_switch(format!("leaf{i}"), usize::MAX);
            b.add_link(hub, leaf).expect("valid star link");
            b.add_entry_port(format!("l{i}"), leaf).expect("valid port");
        }
        b.build()
    }

    /// A `k`-ary Fat-Tree (Al-Fares et al.): `5k²/4` switches and `k³/4`
    /// entry ports (one per host position). See [`crate::fattree`] docs on
    /// the layout.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    pub fn fat_tree(k: usize) -> Topology {
        crate::fattree::fat_tree(k)
    }

    /// A two-tier leaf–spine Clos: `spines` spine switches each connected
    /// to all `leaves` leaf switches, with `hosts_per_leaf` entry ports
    /// per leaf. Switch ids: spines first (`0..spines`), then leaves.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn leaf_spine(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Topology {
        assert!(
            spines >= 1 && leaves >= 1 && hosts_per_leaf >= 1,
            "leaf-spine dimensions must be positive"
        );
        let mut b = crate::TopologyBuilder::new();
        let spine_ids: Vec<SwitchId> = (0..spines)
            .map(|i| b.add_switch(format!("spine-{i}"), usize::MAX))
            .collect();
        for l in 0..leaves {
            let leaf = b.add_switch(format!("leaf-{l}"), usize::MAX);
            for &s in &spine_ids {
                b.add_link(leaf, s).expect("valid clos link");
            }
            for h in 0..hosts_per_leaf {
                b.add_entry_port(format!("host-{l}-{h}"), leaf)
                    .expect("valid host port");
            }
        }
        b.build()
    }
}

impl Topology {
    /// Renders the topology in Graphviz DOT syntax: switches as boxes
    /// (labeled with name and capacity), entry ports as ellipses.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph topology {\n");
        for (id, s) in self.switches() {
            let cap = if s.capacity == usize::MAX {
                "∞".to_string()
            } else {
                s.capacity.to_string()
            };
            out.push_str(&format!(
                "  s{} [shape=box, label=\"{} (C={})\"];\n",
                id.0, s.name, cap
            ));
        }
        for (id, p) in self.entry_ports() {
            out.push_str(&format!(
                "  l{} [shape=ellipse, label=\"{}\"];\n  l{} -- s{};\n",
                id.0, p.name, id.0, p.switch.0
            ));
        }
        for (id, s) in self.switches() {
            for &n in &s.neighbors {
                if n > id {
                    out.push_str(&format!("  s{} -- s{};\n", id.0, n.0));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology: {} switches, {} links, {} entry ports",
            self.switch_count(),
            self.link_count(),
            self.entry_port_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_structure() {
        let t = Topology::linear(4);
        assert_eq!(t.switch_count(), 4);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.entry_port_count(), 2);
        assert!(t.is_connected());
        assert_eq!(t.neighbors(SwitchId(1)), &[SwitchId(0), SwitchId(2)]);
        assert_eq!(t.entry_port(EntryPortId(0)).switch, SwitchId(0));
        assert_eq!(t.entry_port(EntryPortId(1)).switch, SwitchId(3));
    }

    #[test]
    fn star_structure() {
        let t = Topology::star(5);
        assert_eq!(t.switch_count(), 6);
        assert_eq!(t.link_count(), 5);
        assert_eq!(t.entry_port_count(), 5);
        assert_eq!(t.neighbors(SwitchId(0)).len(), 5);
    }

    #[test]
    fn distances_bfs() {
        let t = Topology::linear(5);
        let d = t.distances_from(SwitchId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn leaf_spine_structure() {
        let t = Topology::leaf_spine(4, 6, 8);
        assert_eq!(t.switch_count(), 10);
        assert_eq!(t.entry_port_count(), 48);
        assert_eq!(t.link_count(), 24);
        assert!(t.is_connected());
        // Spines connect to every leaf; leaves to every spine.
        for (id, s) in t.switches() {
            if s.name.starts_with("spine") {
                assert_eq!(t.neighbors(id).len(), 6);
            } else {
                assert_eq!(t.neighbors(id).len(), 4);
            }
        }
        // Any leaf-to-leaf distance is exactly 2 (via a spine).
        let d = t.distances_from(SwitchId(4)); // first leaf
        for (id, s) in t.switches() {
            if s.name.starts_with("leaf") && id != SwitchId(4) {
                assert_eq!(d[id.0], 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn leaf_spine_zero_rejected() {
        let _ = Topology::leaf_spine(0, 3, 1);
    }

    #[test]
    fn capacities_roundtrip() {
        let mut t = Topology::linear(3);
        t.set_uniform_capacity(10);
        t.set_capacity(SwitchId(1), 99);
        assert_eq!(t.capacities(), vec![10, 99, 10]);
        assert_eq!(t.capacity(SwitchId(1)), 99);
    }

    #[test]
    fn dot_export_structure() {
        let mut t = Topology::linear(2);
        t.set_uniform_capacity(7);
        let dot = t.to_dot();
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.contains("s0 [shape=box"));
        assert!(dot.contains("(C=7)"));
        assert!(dot.contains("s0 -- s1;"));
        assert!(dot.contains("l0 -- s0;"));
        assert!(dot.contains("l1 -- s1;"));
        // Each undirected link appears exactly once.
        assert_eq!(dot.matches("s0 -- s1;").count(), 1);
    }

    #[test]
    fn display_mentions_counts() {
        let t = Topology::linear(2);
        let s = t.to_string();
        assert!(s.contains("2 switches"));
        assert!(s.contains("1 links"));
    }
}

//! Incremental topology construction.

use crate::graph::{EntryPort, EntryPortId, Switch, SwitchId, Topology, TopologyError};

/// Builder for [`Topology`] values.
///
/// # Example
///
/// ```
/// use flowplace_topo::TopologyBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TopologyBuilder::new();
/// let a = b.add_switch("a", 100);
/// let c = b.add_switch("c", 100);
/// b.add_link(a, c)?;
/// let ingress = b.add_entry_port("l0", a)?;
/// let topo = b.build();
/// assert_eq!(topo.entry_port(ingress).switch, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    switches: Vec<Switch>,
    entries: Vec<EntryPort>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a switch with the given name and ACL rule capacity, returning
    /// its id.
    pub fn add_switch(&mut self, name: impl Into<String>, capacity: usize) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(Switch {
            name: name.into(),
            capacity,
            neighbors: Vec::new(),
        });
        id
    }

    /// Adds an undirected link between two switches.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSwitch`] for out-of-range ids,
    /// [`TopologyError::SelfLoop`] if `a == b`, and
    /// [`TopologyError::DuplicateLink`] if the link already exists.
    pub fn add_link(&mut self, a: SwitchId, b: SwitchId) -> Result<(), TopologyError> {
        if a.0 >= self.switches.len() {
            return Err(TopologyError::UnknownSwitch(a));
        }
        if b.0 >= self.switches.len() {
            return Err(TopologyError::UnknownSwitch(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self.switches[a.0].neighbors.contains(&b) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        self.switches[a.0].neighbors.push(b);
        self.switches[b.0].neighbors.push(a);
        Ok(())
    }

    /// Attaches a network entry (ingress/egress) port to a switch,
    /// returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownSwitch`] if `switch` is out of range.
    pub fn add_entry_port(
        &mut self,
        name: impl Into<String>,
        switch: SwitchId,
    ) -> Result<EntryPortId, TopologyError> {
        if switch.0 >= self.switches.len() {
            return Err(TopologyError::UnknownSwitch(switch));
        }
        let id = EntryPortId(self.entries.len());
        self.entries.push(EntryPort {
            name: name.into(),
            switch,
        });
        Ok(id)
    }

    /// Finalizes the topology. Neighbor lists are sorted for deterministic
    /// iteration order.
    pub fn build(mut self) -> Topology {
        for s in &mut self.switches {
            s.neighbors.sort_unstable();
        }
        Topology {
            switches: self.switches,
            entries: self.entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_switch() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a", 1);
        let bad = SwitchId(7);
        assert_eq!(b.add_link(a, bad), Err(TopologyError::UnknownSwitch(bad)));
        assert_eq!(
            b.add_entry_port("x", bad),
            Err(TopologyError::UnknownSwitch(bad))
        );
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut b = TopologyBuilder::new();
        let a = b.add_switch("a", 1);
        let c = b.add_switch("c", 1);
        assert_eq!(b.add_link(a, a), Err(TopologyError::SelfLoop(a)));
        b.add_link(a, c).unwrap();
        assert_eq!(b.add_link(c, a), Err(TopologyError::DuplicateLink(c, a)));
    }

    #[test]
    fn neighbors_sorted_after_build() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch("s0", 1);
        let s1 = b.add_switch("s1", 1);
        let s2 = b.add_switch("s2", 1);
        b.add_link(s0, s2).unwrap();
        b.add_link(s0, s1).unwrap();
        let t = b.build();
        assert_eq!(t.neighbors(s0), &[s1, s2]);
    }
}

//! # flowplace-traffic — deterministic flow-arrival generation
//!
//! The paper treats every placed rule as pinned in TCAM; the caching
//! tier (see `flowplace-ctrl`) instead treats TCAM as a cache over the
//! full rule population, which makes the *traffic* hitting the cache the
//! experiment's independent variable. This crate generates that traffic:
//! a seeded, fully deterministic stream of [`FlowEvent`]s with
//!
//! * **Zipf-skewed popularity** over both the ingress space and each
//!   ingress's flow universe (the skew that makes caching work at all),
//! * a configurable **arrival rate** in flow events per simulated
//!   second — integer accumulator arithmetic, so rates from single
//!   digits up to millions of events per second land exactly on the
//!   virtual-millisecond clock the controller runtime already uses,
//! * **flowlets** — a drawn flow emits a short run of back-to-back
//!   packets before the next flow is drawn (temporal locality), and
//! * optional **burst phases** — periodic windows in which the arrival
//!   rate is multiplied, modelling diurnal spikes.
//!
//! Streams serialize to a line-oriented text format
//! ([`format_flows`] / [`parse_flows`], header tag
//! `flowplace.traffic.v1`) so a generated workload can be committed,
//! replayed through `flowplace ctrl replay --traffic`, and byte-compared
//! across runs. Identical [`TrafficConfig`]s always produce identical
//! streams on every platform: the only entropy source is the in-tree
//! xoshiro generator from `flowplace-rng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use flowplace_acl::Packet;
use flowplace_rng::{Rng, StdRng};
use flowplace_topo::EntryPortId;

/// Domain-separation constant folded into the seed so a traffic stream
/// never shares a raw RNG stream with scenario generation that happens
/// to use the same user-facing seed.
const SEED_SALT: u64 = 0x7AFF1C;

/// One flow arrival: a concrete packet header entering the network at an
/// ingress port at a virtual-clock timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowEvent {
    /// Arrival time in virtual milliseconds since stream start.
    pub at_ms: u64,
    /// The entry port the flow arrives on.
    pub ingress: EntryPortId,
    /// The packet header (all packets of one flowlet share it).
    pub packet: Packet,
}

/// Periodic burst phases: for `active_ms` out of every `period_ms`, the
/// arrival rate is multiplied by `multiplier`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstConfig {
    /// Length of one burst cycle in virtual milliseconds.
    pub period_ms: u64,
    /// Leading portion of each cycle that runs at the boosted rate.
    pub active_ms: u64,
    /// Rate multiplier inside the burst window (1 = no burst).
    pub multiplier: u64,
}

/// Generator parameters. Every field is part of the deterministic
/// fingerprint of the stream: equal configs produce byte-identical
/// streams.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficConfig {
    /// RNG seed (salted internally; safe to share with scenario seeds).
    pub seed: u64,
    /// Flow events per simulated second (integer accumulator math keeps
    /// sub-millisecond rates exact; millions per second are fine).
    pub rate: u64,
    /// Stream length in virtual milliseconds.
    pub duration_ms: u64,
    /// Zipf exponent for both the ingress draw and the per-ingress flow
    /// draw. 0 = uniform; ~1 = classic Zipf; larger = more skew.
    pub zipf: f64,
    /// Number of ingress entry ports (`l0..l{n-1}`) flows arrive on.
    pub ingresses: usize,
    /// Packet header width in bits (must match the deployed policies).
    pub width: u32,
    /// Distinct flow headers per ingress (the cacheable universe).
    pub flows_per_ingress: usize,
    /// Mean packets per flowlet; each drawn flow emits a uniform
    /// `1..=2*flowlet_len-1` packet run (mean `flowlet_len`).
    pub flowlet_len: u64,
    /// Optional periodic burst phases.
    pub burst: Option<BurstConfig>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 7,
            rate: 1000,
            duration_ms: 1000,
            zipf: 1.1,
            ingresses: 4,
            width: 16,
            flows_per_ingress: 64,
            flowlet_len: 4,
            burst: None,
        }
    }
}

/// Zipf(s) sampler over ranks `0..n` via a precomputed CDF and binary
/// search. Rank 0 is the most popular.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf sampler needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent {s} invalid");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True for the degenerate single-rank sampler. Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()` (0 = most popular).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First rank whose CDF value exceeds u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// SplitMix64 finalizer — used to derive a stable pseudo-random header
/// for each (ingress, flow-rank) pair without consuming RNG stream.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The stable header bits of flow `rank` at `ingress` under `seed`.
fn flow_header(seed: u64, ingress: usize, rank: usize, width: u32) -> u128 {
    let hi = mix64(seed ^ SEED_SALT ^ ((ingress as u64) << 32) ^ rank as u64);
    let lo = mix64(hi ^ 0xD1B54A32D192ED03);
    let bits = ((hi as u128) << 64) | lo as u128;
    let mask = if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    };
    bits & mask
}

/// Generates the deterministic flow stream for `config`.
///
/// # Panics
///
/// Panics on degenerate configs: zero ingresses, zero flows per
/// ingress, zero width, or a burst with `period_ms == 0`.
pub fn generate(config: &TrafficConfig) -> Vec<FlowEvent> {
    assert!(config.ingresses > 0, "traffic needs at least one ingress");
    assert!(
        config.flows_per_ingress > 0,
        "traffic needs a non-empty flow universe"
    );
    if let Some(b) = &config.burst {
        assert!(b.period_ms > 0, "burst period must be positive");
        assert!(b.active_ms <= b.period_ms, "burst window exceeds period");
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ SEED_SALT);
    let ingress_zipf = ZipfSampler::new(config.ingresses, config.zipf);
    let flow_zipf = ZipfSampler::new(config.flows_per_ingress, config.zipf);
    let flowlet_max = config.flowlet_len.max(1) * 2 - 1;

    let mut events = Vec::new();
    // Accumulator in thousandths of an event: adding `rate` each virtual
    // millisecond emits exactly `rate` events per simulated second with
    // no drift, at any rate.
    let mut acc: u64 = 0;
    let mut flowlet_left: u64 = 0;
    let mut current = (EntryPortId(0), Packet::from_bits(0, config.width));
    for t in 0..config.duration_ms {
        let multiplier = match &config.burst {
            Some(b) if t % b.period_ms < b.active_ms => b.multiplier.max(1),
            _ => 1,
        };
        acc += config.rate * multiplier;
        let due = acc / 1000;
        acc %= 1000;
        for _ in 0..due {
            if flowlet_left == 0 {
                let ingress = ingress_zipf.sample(&mut rng);
                let rank = flow_zipf.sample(&mut rng);
                let bits = flow_header(config.seed, ingress, rank, config.width);
                current = (EntryPortId(ingress), Packet::from_bits(bits, config.width));
                flowlet_left = if flowlet_max == 1 {
                    1
                } else {
                    rng.gen_range(1..=flowlet_max)
                };
            }
            flowlet_left -= 1;
            events.push(FlowEvent {
                at_ms: t,
                ingress: current.0,
                packet: current.1,
            });
        }
    }
    events
}

// ---------------------------------------------------------------------
// Replayable text serialization
// ---------------------------------------------------------------------

/// Header tag of the flow-trace text format.
pub const TRACE_SCHEMA: &str = "flowplace.traffic.v1";

/// A flow-trace parse failure, with the 1-based offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FlowTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FlowTraceError {}

/// Renders a flow stream as replayable text: the schema header followed
/// by one `AT_MS INGRESS BITS` line per event. Byte-identical for
/// identical streams.
pub fn format_flows(events: &[FlowEvent]) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 24 + 32);
    let _ = writeln!(out, "# {TRACE_SCHEMA}");
    for e in events {
        let _ = writeln!(out, "{} {} {}", e.at_ms, e.ingress, e.packet);
    }
    out
}

/// Parses the [`format_flows`] text format. Blank lines and further
/// `#` comments are ignored; the schema header line is required first.
///
/// # Errors
///
/// [`FlowTraceError`] naming the first malformed line.
pub fn parse_flows(text: &str) -> Result<Vec<FlowEvent>, FlowTraceError> {
    let mut events = Vec::new();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let err = |message: String| FlowTraceError { line, message };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if comment.trim() == TRACE_SCHEMA {
                saw_header = true;
            }
            continue;
        }
        if !saw_header {
            return Err(err(format!("missing `# {TRACE_SCHEMA}` header")));
        }
        let mut parts = trimmed.split_whitespace();
        let at_ms: u64 = parts
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .parse()
            .map_err(|_| err("bad timestamp".into()))?;
        let ingress = parts
            .next()
            .and_then(|s| s.strip_prefix('l'))
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| err("bad ingress (want lN)".into()))?;
        let bits_str = parts
            .next()
            .ok_or_else(|| err("missing header bits".into()))?;
        if parts.next().is_some() {
            return Err(err("trailing fields".into()));
        }
        let width = bits_str.len() as u32;
        if width == 0 || width > 128 {
            return Err(err(format!("bad header width {width}")));
        }
        let mut bits: u128 = 0;
        for c in bits_str.chars() {
            bits = (bits << 1)
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => return Err(err(format!("bad header bit {c:?}"))),
                };
        }
        events.push(FlowEvent {
            at_ms,
            ingress: EntryPortId(ingress),
            packet: Packet::from_bits(bits, width),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_dominates() {
        let sampler = ZipfSampler::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 beats rank 1");
        assert!(counts[1] > counts[10], "rank 1 beats rank 10");
        assert!(
            counts[0] > 10_000 / 10,
            "head rank carries well over uniform share: {}",
            counts[0]
        );
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..=2400).contains(&c), "uniform-ish: {counts:?}");
        }
    }

    #[test]
    fn rate_is_exact_at_any_scale() {
        for (rate, duration, expect) in [
            (1000u64, 100u64, 100usize),
            (250, 1000, 250),
            (3, 2000, 6),
            (2_000_000, 5, 10_000), // millions per simulated second
        ] {
            let events = generate(&TrafficConfig {
                rate,
                duration_ms: duration,
                ..TrafficConfig::default()
            });
            assert_eq!(events.len(), expect, "rate {rate} over {duration}ms");
        }
    }

    #[test]
    fn timestamps_are_monotone_and_bounded() {
        let events = generate(&TrafficConfig::default());
        assert!(events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert!(events.iter().all(|e| e.at_ms < 1000));
    }

    #[test]
    fn burst_phase_multiplies_rate_inside_window() {
        let config = TrafficConfig {
            rate: 1000,
            duration_ms: 100,
            burst: Some(BurstConfig {
                period_ms: 20,
                active_ms: 10,
                multiplier: 3,
            }),
            ..TrafficConfig::default()
        };
        let events = generate(&config);
        // 50ms at 3x + 50ms at 1x = 150 + 50 events.
        assert_eq!(events.len(), 200);
        let in_burst = events.iter().filter(|e| e.at_ms % 20 < 10).count();
        assert_eq!(in_burst, 150);
    }

    #[test]
    fn flowlets_repeat_the_same_header() {
        let events = generate(&TrafficConfig {
            rate: 5000,
            duration_ms: 100,
            flowlet_len: 8,
            ..TrafficConfig::default()
        });
        let repeats = events
            .windows(2)
            .filter(|w| w[0].packet == w[1].packet && w[0].ingress == w[1].ingress)
            .count();
        // With mean flowlet length 8, most adjacent pairs share a flow.
        assert!(
            repeats * 2 > events.len(),
            "{repeats} repeats out of {} events",
            events.len()
        );
    }

    #[test]
    fn same_seed_is_byte_identical_and_seeds_differ() {
        let config = TrafficConfig::default();
        let a = format_flows(&generate(&config));
        let b = format_flows(&generate(&config));
        assert_eq!(a, b, "same config replays byte-identically");
        let c = format_flows(&generate(&TrafficConfig { seed: 8, ..config }));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn trace_round_trips() {
        let events = generate(&TrafficConfig {
            rate: 500,
            duration_ms: 200,
            ..TrafficConfig::default()
        });
        let text = format_flows(&events);
        assert!(text.starts_with(&format!("# {TRACE_SCHEMA}\n")));
        let parsed = parse_flows(&text).expect("round trip parses");
        assert_eq!(parsed, events);
        assert_eq!(format_flows(&parsed), text);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_flows("1 l0 0101").is_err(), "header required");
        let head = format!("# {TRACE_SCHEMA}\n");
        for bad in [
            "x l0 0101",
            "1 s0 0101",
            "1 l0 01x1",
            "1 l0",
            "1 l0 0101 extra",
        ] {
            let doc = format!("{head}{bad}\n");
            let e = parse_flows(&doc).expect_err(bad);
            assert_eq!(e.line, 2, "{bad}");
        }
        assert!(parse_flows(&head).expect("empty stream ok").is_empty());
    }

    #[test]
    fn headers_fit_width_and_are_stable_per_flow() {
        let config = TrafficConfig {
            width: 8,
            ..TrafficConfig::default()
        };
        let events = generate(&config);
        assert!(events.iter().all(|e| e.packet.width() == 8));
        // The same (ingress, rank) always maps to the same header.
        assert_eq!(
            flow_header(7, 2, 5, 8),
            flow_header(7, 2, 5, 8),
            "stable headers"
        );
        assert_ne!(flow_header(7, 2, 5, 8), flow_header(7, 2, 6, 8));
    }

    #[test]
    fn ingress_popularity_is_skewed() {
        let events = generate(&TrafficConfig {
            rate: 20_000,
            duration_ms: 500,
            zipf: 1.3,
            ingresses: 8,
            ..TrafficConfig::default()
        });
        let mut counts = vec![0usize; 8];
        for e in &events {
            counts[e.ingress.0] += 1;
        }
        assert!(counts[0] > counts[7] * 2, "skewed ingresses: {counts:?}");
    }
}

//! Seeded randomized shortest-path route generation.
//!
//! The paper's experiments use "a randomly generated shortest-path routing".
//! [`shortest_path`] picks one shortest path between two entry ports,
//! breaking equal-length ties uniformly at random (deterministically, from
//! the caller's seed) — the standard ECMP-style path selection in a
//! fat-tree, where many shortest paths exist between most host pairs.

use flowplace_rng::{Rng, StdRng};

use flowplace_topo::{EntryPortId, SwitchId, Topology};

use crate::{Route, RouteSet};

/// Picks one shortest path from `ingress` to `egress`, breaking ties with
/// `rng`. Returns `None` if the egress switch is unreachable.
///
/// The returned route's switch list starts at the ingress's switch and ends
/// at the egress's switch (a single shared switch yields a length-1 path).
pub fn shortest_path(
    topo: &Topology,
    ingress: EntryPortId,
    egress: EntryPortId,
    rng: &mut impl Rng,
) -> Option<Route> {
    let src = topo.entry_port(ingress).switch;
    let dst = topo.entry_port(egress).switch;
    let dist_to_dst = topo.distances_from(dst);
    if dist_to_dst[src.0] == usize::MAX {
        return None;
    }
    let mut switches = vec![src];
    let mut cur = src;
    while cur != dst {
        let next_dist = dist_to_dst[cur.0] - 1;
        let candidates: Vec<SwitchId> = topo
            .neighbors(cur)
            .iter()
            .copied()
            .filter(|n| dist_to_dst[n.0] == next_dist)
            .collect();
        debug_assert!(!candidates.is_empty(), "BFS distance field is consistent");
        cur = candidates[rng.gen_range(0..candidates.len())];
        switches.push(cur);
    }
    Some(Route::new(ingress, egress, switches))
}

/// Generates `count` routes between uniformly random distinct entry-port
/// pairs, each a randomized shortest path. Deterministic in `seed`.
///
/// Pairs whose endpoints share a switch produce valid single-switch routes;
/// unreachable pairs are skipped and retried, so the result always has
/// exactly `count` routes on a connected topology.
///
/// # Panics
///
/// Panics if the topology has fewer than two entry ports.
pub fn random_routes(topo: &Topology, count: usize, seed: u64) -> RouteSet {
    let n = topo.entry_port_count();
    assert!(n >= 2, "need at least two entry ports to route between");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut routes = RouteSet::new();
    let mut attempts = 0usize;
    while routes.len() < count {
        attempts += 1;
        assert!(
            attempts < count.saturating_mul(100) + 1000,
            "could not generate {count} routes; topology too disconnected"
        );
        let a = EntryPortId(rng.gen_range(0..n));
        let b = EntryPortId(rng.gen_range(0..n));
        if a == b {
            continue;
        }
        if let Some(r) = shortest_path(topo, a, b, &mut rng) {
            routes.push(r);
        }
    }
    routes
}

/// Generates routes from every entry port to `fanout` distinct random
/// destinations (the per-ingress variant used by experiments that fix the
/// number of policies while varying paths per policy). Deterministic in
/// `seed`.
///
/// # Panics
///
/// Panics if the topology has fewer than two entry ports.
pub fn routes_per_ingress(topo: &Topology, fanout: usize, seed: u64) -> RouteSet {
    let n = topo.entry_port_count();
    assert!(n >= 2, "need at least two entry ports to route between");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut routes = RouteSet::new();
    for i in 0..n {
        let ingress = EntryPortId(i);
        let mut used = std::collections::BTreeSet::new();
        let want = fanout.min(n - 1);
        let mut attempts = 0usize;
        while used.len() < want {
            attempts += 1;
            assert!(attempts < 100 * want + 1000, "routing generation stalled");
            let j = rng.gen_range(0..n);
            if j == i || used.contains(&j) {
                continue;
            }
            if let Some(r) = shortest_path(topo, ingress, EntryPortId(j), &mut rng) {
                used.insert(j);
                routes.push(r);
            }
        }
    }
    routes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_on_linear_is_the_chain() {
        let topo = Topology::linear(5);
        let mut rng = StdRng::seed_from_u64(1);
        let r = shortest_path(&topo, EntryPortId(0), EntryPortId(1), &mut rng).unwrap();
        assert_eq!(
            r.switches,
            (0..5).map(SwitchId).collect::<Vec<_>>(),
            "unique shortest path on a chain"
        );
    }

    #[test]
    fn shortest_paths_have_minimal_length() {
        let topo = Topology::fat_tree(4);
        let mut rng = StdRng::seed_from_u64(3);
        for (a, b) in [(0usize, 15usize), (0, 3), (5, 10)] {
            let r = shortest_path(&topo, EntryPortId(a), EntryPortId(b), &mut rng).unwrap();
            let src = topo.entry_port(EntryPortId(a)).switch;
            let dst = topo.entry_port(EntryPortId(b)).switch;
            let d = topo.distances_from(src);
            assert_eq!(r.switches.len(), d[dst.0] + 1, "minimal hop count");
            assert_eq!(*r.switches.first().unwrap(), src);
            assert_eq!(*r.switches.last().unwrap(), dst);
            // Consecutive switches are adjacent.
            for w in r.switches.windows(2) {
                assert!(topo.neighbors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn same_edge_switch_single_hop_path() {
        let topo = Topology::fat_tree(4);
        // Hosts 0 and 1 share edge switch in pod 0.
        let mut rng = StdRng::seed_from_u64(0);
        let r = shortest_path(&topo, EntryPortId(0), EntryPortId(1), &mut rng).unwrap();
        assert_eq!(r.switches.len(), 1);
    }

    #[test]
    fn random_routes_deterministic_in_seed() {
        let topo = Topology::fat_tree(4);
        let a = random_routes(&topo, 20, 42);
        let b = random_routes(&topo, 20, 42);
        let c = random_routes(&topo, 20, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn tie_breaking_explores_multiple_paths() {
        // In a fat-tree there are multiple shortest paths between pods;
        // different seeds should eventually pick different ones.
        let topo = Topology::fat_tree(4);
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = shortest_path(&topo, EntryPortId(0), EntryPortId(15), &mut rng).unwrap();
            distinct.insert(r.switches.clone());
        }
        assert!(distinct.len() > 1, "expected ECMP diversity");
    }

    #[test]
    fn routes_per_ingress_counts() {
        let topo = Topology::fat_tree(4);
        let rs = routes_per_ingress(&topo, 3, 9);
        assert_eq!(rs.len(), 16 * 3);
        for i in 0..16 {
            assert_eq!(rs.paths_from(EntryPortId(i)).len(), 3);
        }
    }
}

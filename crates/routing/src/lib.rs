//! Routing module for `flowplace`.
//!
//! The paper assumes routing is produced by an external module ("it may run
//! shortest-path routing ... or it may simply be a static routing library")
//! and consumed by the rule-placement optimizer as a set of routing paths.
//! This crate is that module:
//!
//! * [`Route`] — one path: an ingress entry port, an egress entry port, the
//!   ordered switches between them, and an optional flow descriptor (the
//!   set of packets the routing module sends down this path, used for the
//!   paper's §IV-C path slicing).
//! * [`RouteSet`] — all routes, indexed by ingress (`P_i` / `S_i` in the
//!   paper's notation).
//! * [`shortest`] — seeded randomized shortest-path generation, the routing
//!   policy used in the paper's experiments.
//!
//! # Example
//!
//! ```
//! use flowplace_topo::Topology;
//! use flowplace_routing::shortest;
//!
//! let topo = Topology::fat_tree(4);
//! let routes = shortest::random_routes(&topo, 32, 7);
//! assert_eq!(routes.len(), 32);
//! for r in routes.iter() {
//!     assert!(!r.switches.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flowset;
pub mod kshortest;
mod paths;
pub mod shortest;

pub use flowset::assign_destination_flows;
pub use paths::{Route, RouteId, RouteSet};

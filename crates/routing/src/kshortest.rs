//! Multipath route generation: all equal-cost shortest paths.
//!
//! Datacenter routing (ECMP) spreads a flow over *every* shortest path
//! between two points, not one. When an ingress policy must hold on all
//! of them, the placement problem sees the full path set — this module
//! enumerates it (up to a cap, since fat-trees have combinatorially many
//! equal-cost paths).

use flowplace_topo::{EntryPortId, SwitchId, Topology};

use crate::{Route, RouteSet};

/// Enumerates up to `limit` equal-cost shortest paths from `ingress` to
/// `egress`, in deterministic (lexicographic by switch id) order. Returns
/// an empty vector if the egress is unreachable.
pub fn all_shortest_paths(
    topo: &Topology,
    ingress: EntryPortId,
    egress: EntryPortId,
    limit: usize,
) -> Vec<Route> {
    let src = topo.entry_port(ingress).switch;
    let dst = topo.entry_port(egress).switch;
    let dist = topo.distances_from(dst);
    if dist[src.0] == usize::MAX || limit == 0 {
        return Vec::new();
    }
    let mut out: Vec<Route> = Vec::new();
    let mut stack: Vec<SwitchId> = vec![src];
    dfs(
        topo, &dist, dst, &mut stack, &mut out, ingress, egress, limit,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    topo: &Topology,
    dist: &[usize],
    dst: SwitchId,
    stack: &mut Vec<SwitchId>,
    out: &mut Vec<Route>,
    ingress: EntryPortId,
    egress: EntryPortId,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    let cur = *stack.last().expect("stack nonempty");
    if cur == dst {
        out.push(Route::new(ingress, egress, stack.clone()));
        return;
    }
    // Neighbors are sorted, so enumeration order is deterministic.
    let next_dist = dist[cur.0] - 1;
    for &n in topo.neighbors(cur) {
        if dist[n.0] == next_dist {
            stack.push(n);
            dfs(topo, dist, dst, stack, out, ingress, egress, limit);
            stack.pop();
            if out.len() >= limit {
                return;
            }
        }
    }
}

/// Builds the full ECMP route set for a list of `(ingress, egress)` pairs,
/// capping each pair at `per_pair` paths.
pub fn ecmp_routes(
    topo: &Topology,
    pairs: &[(EntryPortId, EntryPortId)],
    per_pair: usize,
) -> RouteSet {
    let mut set = RouteSet::new();
    for &(a, b) in pairs {
        set.extend(all_shortest_paths(topo, a, b, per_pair));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowplace_topo::Topology;

    #[test]
    fn single_path_on_a_chain() {
        let topo = Topology::linear(4);
        let paths = all_shortest_paths(&topo, EntryPortId(0), EntryPortId(1), 10);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].switches.len(), 4);
    }

    #[test]
    fn fat_tree_cross_pod_has_k2_over_4_paths() {
        // Between hosts in different pods of a k-ary fat-tree there are
        // (k/2)² equal-cost shortest paths (one per core switch).
        let topo = Topology::fat_tree(4);
        let paths = all_shortest_paths(&topo, EntryPortId(0), EntryPortId(15), 100);
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert_eq!(p.switches.len(), 5, "edge-agg-core-agg-edge");
            assert_eq!(p.ingress, EntryPortId(0));
            assert_eq!(p.egress, EntryPortId(15));
            // Consecutive switches adjacent.
            for w in p.switches.windows(2) {
                assert!(topo.neighbors(w[0]).contains(&w[1]));
            }
        }
        // All distinct.
        let mut sigs: Vec<Vec<usize>> = paths
            .iter()
            .map(|p| p.switches.iter().map(|s| s.0).collect())
            .collect();
        sigs.sort();
        sigs.dedup();
        assert_eq!(sigs.len(), 4);
    }

    #[test]
    fn same_pod_cross_edge_has_k_over_2_paths() {
        // Hosts under different edges of one pod: one path per agg.
        let topo = Topology::fat_tree(4);
        let paths = all_shortest_paths(&topo, EntryPortId(0), EntryPortId(3), 100);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.switches.len(), 3, "edge-agg-edge");
        }
    }

    #[test]
    fn limit_caps_enumeration() {
        let topo = Topology::fat_tree(6);
        let all = all_shortest_paths(&topo, EntryPortId(0), EntryPortId(53), 100);
        assert_eq!(all.len(), 9); // (6/2)² cores
        let capped = all_shortest_paths(&topo, EntryPortId(0), EntryPortId(53), 3);
        assert_eq!(capped.len(), 3);
        assert_eq!(&all[..3], &capped[..]);
    }

    #[test]
    fn ecmp_routes_aggregate_pairs() {
        let topo = Topology::fat_tree(4);
        let set = ecmp_routes(
            &topo,
            &[
                (EntryPortId(0), EntryPortId(15)),
                (EntryPortId(1), EntryPortId(8)),
            ],
            2,
        );
        assert_eq!(set.len(), 4);
        assert_eq!(set.paths_from(EntryPortId(0)).len(), 2);
        assert_eq!(set.paths_from(EntryPortId(1)).len(), 2);
    }
}

//! Flow descriptors for path slicing (§IV-C).
//!
//! When the routing library also specifies *which* packets traverse each
//! route (e.g. "packets for this route are destined to 10.0.1.0/24"), the
//! optimizer only needs to place the policy rules that overlap the route's
//! flow set. This module attaches destination-prefix flow descriptors to
//! routes, mirroring the paper's Figure 6 example.

use flowplace_acl::Ternary;
use flowplace_topo::EntryPortId;

use crate::RouteSet;

/// Assigns each route a flow descriptor that constrains the packet's
/// destination-address bits to identify the route's egress port.
///
/// The destination field is modeled as the low `dst_bits` bits of the
/// match space (header width `width`); egress port `e` owns the destination
/// value `e` (mod `2^dst_bits`). Each route's flow becomes
/// `*...*<dst bits fixed to its egress>`.
///
/// This mirrors the Figure 6 setup where one route carries packets to
/// `10.0.1.0/24` and another to `10.0.2.0/24`: policies sliced per path
/// keep only the rules whose match fields overlap the route's flow.
///
/// # Panics
///
/// Panics if `dst_bits` is zero or exceeds `width`, or `width` exceeds
/// [`flowplace_acl::MAX_WIDTH`].
pub fn assign_destination_flows(routes: &mut RouteSet, width: u32, dst_bits: u32) {
    assert!(
        dst_bits >= 1 && dst_bits <= width,
        "dst_bits must be in 1..=width"
    );
    let care = if dst_bits >= 128 {
        u128::MAX
    } else {
        (1u128 << dst_bits) - 1
    };
    let ids: Vec<_> = routes.iter_with_ids().map(|(id, _)| id).collect();
    let updated: Vec<_> = ids
        .into_iter()
        .map(|id| {
            let r = routes.route(id).clone();
            let EntryPortId(e) = r.egress;
            let value = (e as u128) & care;
            r.with_flow(Ternary::new(width, care, value))
        })
        .collect();
    *routes = updated.into_iter().collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Route;
    use flowplace_acl::Packet;
    use flowplace_topo::SwitchId;

    #[test]
    fn flows_identify_egress() {
        let mut rs = RouteSet::from_routes(vec![
            Route::new(EntryPortId(0), EntryPortId(1), vec![SwitchId(0)]),
            Route::new(EntryPortId(0), EntryPortId(2), vec![SwitchId(0)]),
        ]);
        assign_destination_flows(&mut rs, 8, 4);
        let f1 = rs.route(crate::RouteId(0)).flow.unwrap();
        let f2 = rs.route(crate::RouteId(1)).flow.unwrap();
        assert!(f1.matches(&Packet::from_bits(0b0000_0001, 8)));
        assert!(!f1.matches(&Packet::from_bits(0b0000_0010, 8)));
        assert!(f2.matches(&Packet::from_bits(0b1111_0010, 8)));
        assert!(
            !f1.intersects(&f2),
            "different egresses carry disjoint flows"
        );
    }

    #[test]
    fn egress_ids_wrap_modulo_dst_space() {
        let mut rs = RouteSet::from_routes(vec![Route::new(
            EntryPortId(0),
            EntryPortId(17),
            vec![SwitchId(0)],
        )]);
        assign_destination_flows(&mut rs, 8, 4);
        let f = rs.route(crate::RouteId(0)).flow.unwrap();
        assert!(f.matches(&Packet::from_bits(17 % 16, 8)));
    }

    #[test]
    #[should_panic(expected = "dst_bits")]
    fn zero_dst_bits_panics() {
        let mut rs = RouteSet::new();
        assign_destination_flows(&mut rs, 8, 0);
    }
}

//! Routes and route sets.

use std::collections::BTreeSet;
use std::fmt;

use flowplace_acl::Ternary;
use flowplace_topo::{EntryPortId, SwitchId};

/// Identifier of a route within a [`RouteSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RouteId(pub usize);

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One routing path `p_{i,j}`: the ordered set of switches packets traverse
/// from an ingress entry port to an egress entry port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// The ingress entry port `l_i` whose policy applies to this path.
    pub ingress: EntryPortId,
    /// The egress entry port where packets leave the network.
    pub egress: EntryPortId,
    /// Switches in traversal order, starting at the ingress switch.
    pub switches: Vec<SwitchId>,
    /// The set of packets the routing module sends along this path, if
    /// known. `None` means "any packet entering at `ingress` may use this
    /// path", which disables §IV-C path slicing for it.
    pub flow: Option<Ternary>,
}

impl Route {
    /// Creates a route with no flow descriptor.
    pub fn new(ingress: EntryPortId, egress: EntryPortId, switches: Vec<SwitchId>) -> Self {
        Route {
            ingress,
            egress,
            switches,
            flow: None,
        }
    }

    /// Sets the flow descriptor (builder style).
    pub fn with_flow(mut self, flow: Ternary) -> Self {
        self.flow = Some(flow);
        self
    }

    /// Number of hops between the ingress and the given switch along this
    /// path (the paper's `loc(s_k, P_i)` ingredient), or `None` if the
    /// switch is not on the path.
    pub fn position_of(&self, switch: SwitchId) -> Option<usize> {
        self.switches.iter().position(|&s| s == switch)
    }

    /// True if the path visits the switch.
    pub fn contains(&self, switch: SwitchId) -> bool {
        self.switches.contains(&switch)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}: ", self.ingress, self.egress)?;
        for (i, s) in self.switches.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The full routing input to rule placement: every path, indexed by the
/// ingress whose policy governs it.
///
/// In the paper's notation, `paths_from(l_i)` is `P_i` and
/// `reachable_switches(l_i)` is `S_i = ⋃_j p_{i,j}`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteSet {
    routes: Vec<Route>,
}

impl RouteSet {
    /// Creates an empty route set.
    pub fn new() -> Self {
        RouteSet::default()
    }

    /// Creates a route set from a list of routes.
    pub fn from_routes(routes: Vec<Route>) -> Self {
        RouteSet { routes }
    }

    /// Adds a route, returning its id.
    pub fn push(&mut self, route: Route) -> RouteId {
        let id = RouteId(self.routes.len());
        self.routes.push(route);
        id
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if there are no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn route(&self, id: RouteId) -> &Route {
        &self.routes[id.0]
    }

    /// Iterates over all routes.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter()
    }

    /// Iterates over `(RouteId, &Route)`.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (RouteId, &Route)> {
        self.routes.iter().enumerate().map(|(i, r)| (RouteId(i), r))
    }

    /// The ids of all routes originating at `ingress` (`P_i`).
    pub fn paths_from(&self, ingress: EntryPortId) -> Vec<RouteId> {
        self.routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.ingress == ingress)
            .map(|(i, _)| RouteId(i))
            .collect()
    }

    /// All ingresses that have at least one route, in ascending order.
    pub fn ingresses(&self) -> Vec<EntryPortId> {
        let set: BTreeSet<EntryPortId> = self.routes.iter().map(|r| r.ingress).collect();
        set.into_iter().collect()
    }

    /// The switches reachable from `ingress` over its paths (`S_i`),
    /// in ascending order.
    pub fn reachable_switches(&self, ingress: EntryPortId) -> Vec<SwitchId> {
        let set: BTreeSet<SwitchId> = self
            .routes
            .iter()
            .filter(|r| r.ingress == ingress)
            .flat_map(|r| r.switches.iter().copied())
            .collect();
        set.into_iter().collect()
    }

    /// Minimum hop distance from `ingress` to `switch` over this ingress's
    /// paths: the paper's `loc(s_k, P_i)` used by the distance-weighted
    /// objective. Returns `None` if no path from `ingress` visits `switch`.
    pub fn loc(&self, ingress: EntryPortId, switch: SwitchId) -> Option<usize> {
        self.routes
            .iter()
            .filter(|r| r.ingress == ingress)
            .filter_map(|r| r.position_of(switch))
            .min()
    }

    /// Removes all routes with the given ids, returning the removed routes.
    /// Remaining routes are re-indexed (ids are not stable across removal).
    pub fn remove_routes(&mut self, ids: &[RouteId]) -> Vec<Route> {
        let drop: BTreeSet<usize> = ids.iter().map(|r| r.0).collect();
        let mut removed = Vec::with_capacity(drop.len());
        let mut kept = Vec::with_capacity(self.routes.len() - drop.len());
        for (i, r) in self.routes.drain(..).enumerate() {
            if drop.contains(&i) {
                removed.push(r);
            } else {
                kept.push(r);
            }
        }
        self.routes = kept;
        removed
    }
}

impl FromIterator<Route> for RouteSet {
    fn from_iter<I: IntoIterator<Item = Route>>(iter: I) -> Self {
        RouteSet {
            routes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Route> for RouteSet {
    fn extend<I: IntoIterator<Item = Route>>(&mut self, iter: I) {
        self.routes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(i: usize, e: usize, sw: &[usize]) -> Route {
        Route::new(
            EntryPortId(i),
            EntryPortId(e),
            sw.iter().map(|&s| SwitchId(s)).collect(),
        )
    }

    #[test]
    fn paths_from_filters_by_ingress() {
        let rs = RouteSet::from_routes(vec![
            route(0, 1, &[0, 1, 2]),
            route(0, 2, &[0, 1, 3]),
            route(1, 0, &[2, 1, 0]),
        ]);
        assert_eq!(rs.paths_from(EntryPortId(0)), vec![RouteId(0), RouteId(1)]);
        assert_eq!(rs.paths_from(EntryPortId(1)), vec![RouteId(2)]);
        assert_eq!(rs.ingresses(), vec![EntryPortId(0), EntryPortId(1)]);
    }

    #[test]
    fn reachable_switches_is_union() {
        let rs = RouteSet::from_routes(vec![route(0, 1, &[0, 1, 2]), route(0, 2, &[0, 1, 3])]);
        let s: Vec<usize> = rs
            .reachable_switches(EntryPortId(0))
            .into_iter()
            .map(|s| s.0)
            .collect();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn loc_is_min_over_paths() {
        let rs = RouteSet::from_routes(vec![route(0, 1, &[0, 1, 2]), route(0, 2, &[2, 3])]);
        assert_eq!(rs.loc(EntryPortId(0), SwitchId(2)), Some(0));
        assert_eq!(rs.loc(EntryPortId(0), SwitchId(1)), Some(1));
        assert_eq!(rs.loc(EntryPortId(0), SwitchId(9)), None);
    }

    #[test]
    fn remove_routes_reindexes() {
        let mut rs = RouteSet::from_routes(vec![
            route(0, 1, &[0]),
            route(1, 2, &[1]),
            route(2, 3, &[2]),
        ]);
        let removed = rs.remove_routes(&[RouteId(1)]);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].ingress, EntryPortId(1));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.route(RouteId(1)).ingress, EntryPortId(2));
    }

    #[test]
    fn position_and_contains() {
        let r = route(0, 1, &[4, 7, 9]);
        assert_eq!(r.position_of(SwitchId(7)), Some(1));
        assert_eq!(r.position_of(SwitchId(5)), None);
        assert!(r.contains(SwitchId(9)));
    }

    #[test]
    fn display_formats_path() {
        let r = route(0, 1, &[4, 7]);
        assert_eq!(r.to_string(), "l0 -> l1: s4 -> s7");
    }
}

//! Hierarchical spans on a deterministic virtual clock.
//!
//! The recorder keeps two clocks, neither of which reads wall time:
//!
//! * a **tick** counter that advances by exactly one on every span
//!   begin and every span end — so durations are reproducible and the
//!   sum of child durations can never exceed the parent's;
//! * a **virtual millisecond** counter that only moves when the caller
//!   syncs it (the controller feeds it from its fault-injection
//!   [`VirtualClock`], which advances on retry backoff).
//!
//! Spans form a tree via an explicit stack: `enter` pushes, the
//! returned [`ScopedSpan`] guard pops on drop. Ending a span that is
//! not on top force-closes everything above it (at the same tick) and
//! counts a mis-nesting, so a bug in instrumentation degrades telemetry
//! instead of corrupting it.
//!
//! [`VirtualClock`]: https://docs.rs/flowplace-ctrl

use std::cell::RefCell;
use std::fmt;

/// Handle to a span recorded by a [`Recorder`]; stable for the lifetime
/// of the recorder (it is the span's index in the trace).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span#{}", self.0)
    }
}

/// An attribute value attached to a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrValue {
    /// Unsigned integer attribute.
    Uint(u64),
    /// Signed integer attribute.
    Int(i64),
    /// Text attribute.
    Text(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Text(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! attr_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> Self {
                AttrValue::Uint(v as u64)
            }
        }
    )*};
}
attr_from_uint!(u8, u16, u32, u64, usize);

macro_rules! attr_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> Self {
                AttrValue::Int(v as i64)
            }
        }
    )*};
}
attr_from_int!(i8, i16, i32, i64, isize);

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Text(if v { "true" } else { "false" }.to_string())
    }
}

/// One recorded span: name, tree position, clock readings, attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanData {
    /// Span name, dot-separated by convention (`"pipeline.depgraphs"`).
    pub name: String,
    /// Parent span, `None` for roots.
    pub parent: Option<SpanId>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Tick at which the span began.
    pub start_tick: u64,
    /// Tick at which the span ended; `None` while still open.
    pub end_tick: Option<u64>,
    /// Virtual-millisecond reading at begin.
    pub start_ms: u64,
    /// Virtual-millisecond reading at end; `None` while still open.
    pub end_ms: Option<u64>,
    /// Attributes in insertion order (first write per key wins the
    /// position, later writes overwrite the value).
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanData {
    /// Duration in ticks, if the span has ended.
    pub fn duration_ticks(&self) -> Option<u64> {
        self.end_tick.map(|end| end - self.start_tick)
    }

    /// Duration in virtual milliseconds, if the span has ended.
    pub fn duration_ms(&self) -> Option<u64> {
        self.end_ms.map(|end| end - self.start_ms)
    }
}

#[derive(Clone, Debug, Default)]
struct Inner {
    tick: u64,
    virtual_ms: u64,
    spans: Vec<SpanData>,
    stack: Vec<SpanId>,
    mis_nested: u64,
}

/// Deterministic span recorder. All methods take `&self`; state lives
/// behind a `RefCell` so instrumented call sites stay borrow-friendly.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: RefCell<Inner>,
}

impl Recorder {
    /// Creates an empty recorder with both clocks at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a span named `name` as a child of the innermost open
    /// span, consuming one tick. Prefer [`Recorder::enter`] (or the
    /// `span!` macro) unless the matching [`Recorder::end`] cannot be
    /// expressed as a scope.
    pub fn begin(&self, name: &str) -> SpanId {
        let mut inner = self.inner.borrow_mut();
        inner.tick += 1;
        let id = SpanId(inner.spans.len() as u64);
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len();
        let span = SpanData {
            name: name.to_string(),
            parent,
            depth,
            start_tick: inner.tick,
            end_tick: None,
            start_ms: inner.virtual_ms,
            end_ms: None,
            attrs: Vec::new(),
        };
        inner.spans.push(span);
        inner.stack.push(id);
        id
    }

    /// Ends `span`, consuming one tick. If `span` is not the innermost
    /// open span, every span nested inside it is force-closed at the
    /// same tick and one mis-nesting is counted per forced close;
    /// ending an already-closed span only counts a mis-nesting.
    pub fn end(&self, span: SpanId) {
        let mut inner = self.inner.borrow_mut();
        if !inner.stack.contains(&span) {
            inner.mis_nested += 1;
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        let ms = inner.virtual_ms;
        while let Some(top) = inner.stack.pop() {
            let idx = top.0 as usize;
            inner.spans[idx].end_tick = Some(tick);
            inner.spans[idx].end_ms = Some(ms);
            if top == span {
                break;
            }
            inner.mis_nested += 1;
        }
    }

    /// Begins a span and returns a guard that ends it on drop.
    pub fn enter(&self, name: &str) -> ScopedSpan<'_> {
        let id = self.begin(name);
        ScopedSpan { recorder: self, id }
    }

    /// Attaches (or overwrites) attribute `key` on `span`.
    pub fn attr(&self, span: SpanId, key: &str, value: impl Into<AttrValue>) {
        let mut inner = self.inner.borrow_mut();
        let idx = span.0 as usize;
        let value = value.into();
        if let Some(slot) = inner.spans[idx].attrs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            inner.spans[idx].attrs.push((key.to_string(), value));
        }
    }

    /// Advances the virtual-millisecond clock to `ms` if `ms` is ahead
    /// of it (monotone; never moves backwards).
    pub fn set_virtual_ms(&self, ms: u64) {
        let mut inner = self.inner.borrow_mut();
        if ms > inner.virtual_ms {
            inner.virtual_ms = ms;
        }
    }

    /// Current virtual-millisecond reading.
    pub fn virtual_ms(&self) -> u64 {
        self.inner.borrow().virtual_ms
    }

    /// Current tick.
    pub fn tick(&self) -> u64 {
        self.inner.borrow().tick
    }

    /// Number of spans recorded so far (open or closed).
    pub fn len(&self) -> usize {
        self.inner.borrow().spans.len()
    }

    /// True if no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().spans.is_empty()
    }

    /// Number of currently open spans.
    pub fn open_count(&self) -> usize {
        self.inner.borrow().stack.len()
    }

    /// Number of mis-nested `end` calls absorbed so far (0 in a
    /// correctly instrumented program).
    pub fn mis_nested(&self) -> u64 {
        self.inner.borrow().mis_nested
    }

    /// Snapshot of every recorded span, in begin order (= id order).
    pub fn spans(&self) -> Vec<SpanData> {
        self.inner.borrow().spans.clone()
    }
}

/// RAII guard for a span opened with [`Recorder::enter`]: the span ends
/// when the guard drops.
#[derive(Debug)]
pub struct ScopedSpan<'a> {
    recorder: &'a Recorder,
    id: SpanId,
}

impl ScopedSpan<'_> {
    /// The underlying span id (e.g. to attach attributes later).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches (or overwrites) attribute `key` on this span.
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        self.recorder.attr(self.id, key, value);
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        self.recorder.end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_in_order() {
        let rec = Recorder::new();
        let a = rec.begin("a");
        let b = rec.begin("b");
        rec.end(b);
        rec.end(a);
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].parent, Some(a));
        assert_eq!(spans[1].depth, 1);
        // a: ticks 1..4, b: ticks 2..3.
        assert_eq!(spans[0].start_tick, 1);
        assert_eq!(spans[0].end_tick, Some(4));
        assert_eq!(spans[1].start_tick, 2);
        assert_eq!(spans[1].end_tick, Some(3));
        assert!(spans[1].duration_ticks() < spans[0].duration_ticks());
        assert_eq!(rec.mis_nested(), 0);
        assert_eq!(rec.open_count(), 0);
    }

    #[test]
    fn scoped_guard_ends_on_drop() {
        let rec = Recorder::new();
        {
            let root = rec.enter("root");
            root.attr("k", 7u64);
            let _child = rec.enter("child");
        }
        assert_eq!(rec.open_count(), 0);
        let spans = rec.spans();
        assert!(spans.iter().all(|s| s.end_tick.is_some()));
        assert_eq!(spans[0].attrs, vec![("k".to_string(), AttrValue::Uint(7))]);
    }

    #[test]
    fn mis_nested_end_force_closes_children() {
        let rec = Recorder::new();
        let a = rec.begin("a");
        let b = rec.begin("b");
        rec.end(a); // b never explicitly ended
        assert_eq!(rec.mis_nested(), 1);
        assert_eq!(rec.open_count(), 0);
        let spans = rec.spans();
        assert_eq!(spans[1].end_tick, spans[0].end_tick);
        rec.end(b); // already closed: absorbed, counted
        assert_eq!(rec.mis_nested(), 2);
    }

    #[test]
    fn virtual_ms_is_monotone_and_stamped() {
        let rec = Recorder::new();
        rec.set_virtual_ms(10);
        let a = rec.begin("a");
        rec.set_virtual_ms(25);
        rec.set_virtual_ms(5); // ignored: behind
        rec.end(a);
        let spans = rec.spans();
        assert_eq!(spans[0].start_ms, 10);
        assert_eq!(spans[0].end_ms, Some(25));
        assert_eq!(spans[0].duration_ms(), Some(15));
        assert_eq!(rec.virtual_ms(), 25);
    }

    #[test]
    fn attr_overwrites_in_place() {
        let rec = Recorder::new();
        let a = rec.begin("a");
        rec.attr(a, "x", 1u64);
        rec.attr(a, "y", "first");
        rec.attr(a, "x", 2u64);
        rec.end(a);
        let spans = rec.spans();
        assert_eq!(
            spans[0].attrs,
            vec![
                ("x".to_string(), AttrValue::Uint(2)),
                ("y".to_string(), AttrValue::Text("first".to_string())),
            ]
        );
    }
}

//! Canonical `flowplace.obs.v1` JSON: writer, parser, validator.
//!
//! The writer emits one object per span / metric row, keys in a fixed
//! order, integers only — the byte stream is a pure function of the
//! recorded events (the determinism contract the differential tests
//! rely on). The parser is a minimal recursive-descent JSON reader (the
//! workspace is dependency-free by design, mirroring the one in
//! `flowplace-bench`), and [`validate_obs_json`] checks both structure
//! and semantics: span intervals must nest, metric rows must be sorted,
//! histogram buckets must sum to their count.

use crate::metrics::{Histogram, MetricValue, Registry, Sample, HISTOGRAM_BOUNDS};
use crate::span::Recorder;
use crate::SCHEMA;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_label_obj(out: &mut String, pairs: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    out.push('}');
}

/// Renders a span recorder as a canonical `"kind": "trace"` document.
pub fn trace_to_json(recorder: &Recorder) -> String {
    let spans = recorder.spans();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"kind\": \"trace\",\n");
    out.push_str("  \"clock\": \"virtual\",\n");
    let _ = writeln!(out, "  \"final_tick\": {},", recorder.tick());
    let _ = writeln!(out, "  \"final_virtual_ms\": {},", recorder.virtual_ms());
    let _ = writeln!(out, "  \"mis_nested\": {},", recorder.mis_nested());
    out.push_str("  \"spans\": [\n");
    for (id, span) in spans.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"id\": {id}, ");
        match span.parent {
            Some(p) => {
                let _ = write!(out, "\"parent\": {}, ", p.0);
            }
            None => out.push_str("\"parent\": null, "),
        }
        let _ = write!(out, "\"depth\": {}, ", span.depth);
        let _ = write!(out, "\"name\": \"{}\", ", escape_json(&span.name));
        let _ = write!(out, "\"start_tick\": {}, ", span.start_tick);
        match span.end_tick {
            Some(t) => {
                let _ = write!(out, "\"end_tick\": {t}, ");
            }
            None => out.push_str("\"end_tick\": null, "),
        }
        let _ = write!(out, "\"start_ms\": {}, ", span.start_ms);
        match span.end_ms {
            Some(t) => {
                let _ = write!(out, "\"end_ms\": {t}, ");
            }
            None => out.push_str("\"end_ms\": null, "),
        }
        out.push_str("\"attrs\": ");
        let attrs: Vec<(String, String)> = span
            .attrs
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        write_label_obj(&mut out, &attrs);
        out.push('}');
        if id + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a metrics registry as a canonical `"kind": "metrics"`
/// document.
pub fn metrics_to_json(registry: &Registry) -> String {
    let samples = registry.snapshot();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"kind\": \"metrics\",\n");
    out.push_str("  \"metrics\": [\n");
    for (i, sample) in samples.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"name\": \"{}\", ", escape_json(&sample.name));
        out.push_str("\"labels\": ");
        write_label_obj(&mut out, &sample.labels);
        let _ = write!(out, ", \"type\": \"{}\", ", sample.value.type_name());
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"value\": {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "\"count\": {}, \"sum\": {}, \"buckets\": [",
                    h.count, h.sum
                );
                for (bi, count) in h.buckets.iter().enumerate() {
                    if bi > 0 {
                        out.push_str(", ");
                    }
                    let le = match HISTOGRAM_BOUNDS.get(bi) {
                        Some(b) => b.to_string(),
                        None => "+inf".to_string(),
                    };
                    let _ = write!(out, "{{\"le\": \"{le}\", \"count\": {count}}}");
                }
                out.push(']');
            }
        }
        out.push('}');
        if i + 1 < samples.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. The obs schema only ever emits integers, so
/// numbers are `i64` and any fraction or exponent is a parse error.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn int_field(&self, key: &str) -> Result<i64, String> {
        match self.get(key) {
            Some(Json::Int(v)) => Ok(*v),
            Some(_) => Err(format!("field {key:?} is not an integer")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn uint_field(&self, key: &str) -> Result<u64, String> {
        let v = self.int_field(key)?;
        u64::try_from(v).map_err(|_| format!("field {key:?} is negative"))
    }

    fn opt_uint_field(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            Some(Json::Null) => Ok(None),
            Some(Json::Int(v)) => u64::try_from(*v)
                .map(Some)
                .map_err(|_| format!("field {key:?} is negative")),
            Some(_) => Err(format!("field {key:?} is neither integer nor null")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            Some(_) => Err(format!("field {key:?} is not an array")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn string_map_field(&self, key: &str) -> Result<Vec<(String, String)>, String> {
        match self.get(key) {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| match v {
                    Json::Str(s) => Ok((k.clone(), s.clone())),
                    _ => Err(format!("field {key:?} has non-string value for {k:?}")),
                })
                .collect(),
            Some(_) => Err(format!("field {key:?} is not an object")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_int(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (the input is a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_int(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.error("non-integer number (the obs schema is integer-only)"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.error("integer out of range"))
    }

    fn parse_document(&mut self) -> Result<Json, String> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing content after document"));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Validated documents
// ---------------------------------------------------------------------------

/// One span row from a validated trace document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Span id (position in the trace).
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Nesting depth.
    pub depth: u64,
    /// Span name.
    pub name: String,
    /// Begin tick.
    pub start_tick: u64,
    /// End tick; `None` if the span was still open at dump time.
    pub end_tick: Option<u64>,
    /// Virtual milliseconds at begin.
    pub start_ms: u64,
    /// Virtual milliseconds at end; `None` if still open.
    pub end_ms: Option<u64>,
    /// Attributes (stringified), in recording order.
    pub attrs: Vec<(String, String)>,
}

impl SpanRow {
    /// Duration in ticks, if closed.
    pub fn duration_ticks(&self) -> Option<u64> {
        self.end_tick.map(|e| e - self.start_tick)
    }

    /// Duration in virtual milliseconds, if closed.
    pub fn duration_ms(&self) -> Option<u64> {
        self.end_ms.map(|e| e - self.start_ms)
    }
}

/// A validated `"kind": "trace"` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDoc {
    /// Final tick-clock reading.
    pub final_tick: u64,
    /// Final virtual-millisecond reading.
    pub final_virtual_ms: u64,
    /// Mis-nested `end` calls absorbed by the recorder.
    pub mis_nested: u64,
    /// All spans, in id order.
    pub spans: Vec<SpanRow>,
}

/// One metric row from a validated metrics document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricRow {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value (type tag included).
    pub value: MetricValue,
}

impl MetricRow {
    /// Renders the row like a registry [`Sample`] (for summaries).
    pub fn to_sample(&self) -> Sample {
        Sample {
            name: self.name.clone(),
            labels: self.labels.clone(),
            value: self.value.clone(),
        }
    }
}

/// A validated `"kind": "metrics"` document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsDoc {
    /// All metric rows, sorted by (name, labels).
    pub metrics: Vec<MetricRow>,
}

/// A validated `flowplace.obs.v1` document of either kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsDoc {
    /// A span trace.
    Trace(TraceDoc),
    /// A metrics dump.
    Metrics(MetricsDoc),
}

impl ObsDoc {
    /// The document's `"kind"` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsDoc::Trace(_) => "trace",
            ObsDoc::Metrics(_) => "metrics",
        }
    }
}

fn validate_trace(root: &Json) -> Result<TraceDoc, String> {
    if root.str_field("clock")? != "virtual" {
        return Err("trace clock must be \"virtual\"".to_string());
    }
    let final_tick = root.uint_field("final_tick")?;
    let final_virtual_ms = root.uint_field("final_virtual_ms")?;
    let mis_nested = root.uint_field("mis_nested")?;
    let mut spans = Vec::new();
    for (i, item) in root.arr_field("spans")?.iter().enumerate() {
        let context = |e: String| format!("span {i}: {e}");
        let row = SpanRow {
            id: item.uint_field("id").map_err(context)?,
            parent: item.opt_uint_field("parent").map_err(context)?,
            depth: item.uint_field("depth").map_err(context)?,
            name: item.str_field("name").map_err(context)?.to_string(),
            start_tick: item.uint_field("start_tick").map_err(context)?,
            end_tick: item.opt_uint_field("end_tick").map_err(context)?,
            start_ms: item.uint_field("start_ms").map_err(context)?,
            end_ms: item.opt_uint_field("end_ms").map_err(context)?,
            attrs: item.string_map_field("attrs").map_err(context)?,
        };
        if row.id != i as u64 {
            return Err(format!("span {i}: id {} out of order", row.id));
        }
        if row.name.is_empty() {
            return Err(format!("span {i}: empty name"));
        }
        if let Some(end) = row.end_tick {
            if end < row.start_tick {
                return Err(format!("span {i}: end_tick precedes start_tick"));
            }
            if end > final_tick {
                return Err(format!("span {i}: end_tick beyond final_tick"));
            }
        }
        if row.end_tick.is_some() != row.end_ms.is_some() {
            return Err(format!("span {i}: end_tick and end_ms must close together"));
        }
        if let Some(end_ms) = row.end_ms {
            if end_ms < row.start_ms {
                return Err(format!("span {i}: end_ms precedes start_ms"));
            }
        }
        match row.parent {
            None => {
                if row.depth != 0 {
                    return Err(format!("span {i}: root with nonzero depth"));
                }
            }
            Some(p) => {
                let parent: &SpanRow = spans
                    .get(p as usize)
                    .ok_or_else(|| format!("span {i}: parent {p} not before child"))?;
                if row.depth != parent.depth + 1 {
                    return Err(format!("span {i}: depth does not match parent"));
                }
                if row.start_tick <= parent.start_tick {
                    return Err(format!("span {i}: begins before its parent"));
                }
                if let (Some(end), Some(parent_end)) = (row.end_tick, parent.end_tick) {
                    if end > parent_end {
                        return Err(format!("span {i}: ends after its parent"));
                    }
                }
            }
        }
        spans.push(row);
    }
    Ok(TraceDoc {
        final_tick,
        final_virtual_ms,
        mis_nested,
        spans,
    })
}

fn validate_metrics(root: &Json) -> Result<MetricsDoc, String> {
    let mut metrics: Vec<MetricRow> = Vec::new();
    for (i, item) in root.arr_field("metrics")?.iter().enumerate() {
        let context = |e: String| format!("metric {i}: {e}");
        let name = item.str_field("name").map_err(context)?.to_string();
        if name.is_empty() {
            return Err(format!("metric {i}: empty name"));
        }
        let labels = item.string_map_field("labels").map_err(context)?;
        if !labels.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(format!("metric {i}: labels not sorted by key"));
        }
        let value = match item.str_field("type").map_err(context)? {
            "counter" => MetricValue::Counter(item.uint_field("value").map_err(context)?),
            "gauge" => MetricValue::Gauge(item.int_field("value").map_err(context)?),
            "histogram" => {
                let count = item.uint_field("count").map_err(context)?;
                let sum = item.uint_field("sum").map_err(context)?;
                let bucket_items = item.arr_field("buckets").map_err(context)?;
                if bucket_items.len() != HISTOGRAM_BOUNDS.len() + 1 {
                    return Err(format!("metric {i}: wrong bucket count"));
                }
                let mut buckets = Vec::with_capacity(bucket_items.len());
                for (bi, b) in bucket_items.iter().enumerate() {
                    let le = b.str_field("le").map_err(context)?;
                    let expect = match HISTOGRAM_BOUNDS.get(bi) {
                        Some(bound) => bound.to_string(),
                        None => "+inf".to_string(),
                    };
                    if le != expect {
                        return Err(format!(
                            "metric {i}: bucket {bi} bound {le:?} != {expect:?}"
                        ));
                    }
                    buckets.push(b.uint_field("count").map_err(context)?);
                }
                if buckets.iter().sum::<u64>() != count {
                    return Err(format!("metric {i}: buckets do not sum to count"));
                }
                MetricValue::Histogram(Histogram {
                    buckets,
                    sum,
                    count,
                })
            }
            other => return Err(format!("metric {i}: unknown type {other:?}")),
        };
        let row = MetricRow {
            name,
            labels,
            value,
        };
        if let Some(prev) = metrics.last() {
            if (&prev.name, &prev.labels) >= (&row.name, &row.labels) {
                return Err(format!("metric {i}: rows not sorted by (name, labels)"));
            }
        }
        metrics.push(row);
    }
    Ok(MetricsDoc { metrics })
}

/// Parses and validates a `flowplace.obs.v1` document (either kind).
///
/// Checks the schema tag, field types, span-tree well-formedness
/// (parents precede and enclose children, depths are consistent) and
/// metric-row canonical ordering — everything the writer guarantees.
pub fn validate_obs_json(text: &str) -> Result<ObsDoc, String> {
    let root = Parser::new(text).parse_document()?;
    let schema = root.str_field("schema")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    match root.str_field("kind")? {
        "trace" => validate_trace(&root).map(ObsDoc::Trace),
        "metrics" => validate_metrics(&root).map(ObsDoc::Metrics),
        other => Err(format!("unknown kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new();
        let root = rec.begin("pipeline");
        rec.attr(root, "ingresses", 2u64);
        let stage = rec.begin("pipeline.depgraphs");
        rec.attr(stage, "built", 2u64);
        rec.end(stage);
        rec.set_virtual_ms(40);
        rec.end(root);
        rec
    }

    #[test]
    fn trace_round_trip_validates() {
        let rec = sample_recorder();
        let text = trace_to_json(&rec);
        let doc = validate_obs_json(&text).unwrap();
        let ObsDoc::Trace(trace) = doc else {
            panic!("expected trace");
        };
        assert_eq!(trace.final_tick, 4);
        assert_eq!(trace.final_virtual_ms, 40);
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[1].attrs, vec![("built".into(), "2".into())]);
        assert_eq!(trace.spans[0].duration_ms(), Some(40));
    }

    #[test]
    fn metrics_round_trip_validates() {
        let reg = Registry::new();
        reg.counter_add_with("solves", &[("provenance", "memo")], 3);
        reg.gauge_set_with("tcam.occupancy", &[("switch", "s0")], 7);
        reg.observe("lat", 3);
        reg.observe("lat", 99999);
        let text = metrics_to_json(&reg);
        let doc = validate_obs_json(&text).unwrap();
        let ObsDoc::Metrics(metrics) = doc else {
            panic!("expected metrics");
        };
        assert_eq!(metrics.metrics.len(), 3);
        let hist = &metrics.metrics[0];
        assert_eq!(hist.name, "lat");
        match &hist.value {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 100002);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn writer_output_is_deterministic() {
        let a = trace_to_json(&sample_recorder());
        let b = trace_to_json(&sample_recorder());
        assert_eq!(a, b);
    }

    #[test]
    fn validator_rejects_tampering() {
        let rec = sample_recorder();
        let good = trace_to_json(&rec);
        assert!(validate_obs_json(&good.replace("flowplace.obs.v1", "bogus.v9")).is_err());
        assert!(
            validate_obs_json(&good.replace("\"kind\": \"trace\"", "\"kind\": \"x\"")).is_err()
        );
        // Child ending after its parent must be caught.
        let bad = good.replace(
            "\"start_tick\": 2, \"end_tick\": 3",
            "\"start_tick\": 2, \"end_tick\": 9",
        );
        assert!(validate_obs_json(&bad).is_err());
        assert!(validate_obs_json("{").is_err());
        assert!(validate_obs_json("").is_err());
    }

    #[test]
    fn validator_rejects_floats() {
        let err = validate_obs_json("{\"schema\": 1.5}").unwrap_err();
        assert!(err.contains("integer-only"), "{err}");
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn open_span_serializes_with_nulls() {
        let rec = Recorder::new();
        let _open = rec.begin("open");
        let text = trace_to_json(&rec);
        assert!(text.contains("\"end_tick\": null"));
        let doc = validate_obs_json(&text).unwrap();
        let ObsDoc::Trace(trace) = doc else {
            panic!("expected trace");
        };
        assert_eq!(trace.spans[0].end_tick, None);
        assert_eq!(trace.spans[0].duration_ticks(), None);
    }
}

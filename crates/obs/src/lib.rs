//! Deterministic observability for flowplace.
//!
//! The solver pipeline, the warm cache, and the controller runtime each
//! grew their own telemetry ([`StageTimes`], [`WarmStats`], `CtrlStats`)
//! with no common surface: there was no way to answer "where did this
//! epoch's budget go" across pipeline → portfolio → dataplane. This
//! crate is that surface. It has **zero dependencies** (not even on the
//! other flowplace crates — they depend on it) and two halves:
//!
//! * [`span`] — a hierarchical span recorder driven by a **logical tick
//!   clock** plus the controller's virtual-millisecond clock. Real wall
//!   time never enters a recorded span, so traces are *byte-identical*
//!   across runs at the same seed and can be diffed in tests.
//! * [`metrics`] — a registry of typed counters, gauges, and histograms
//!   keyed by name plus sorted labels (e.g. `tcam.occupancy{switch=s2}`).
//!
//! Both halves serialize to the canonical `flowplace.obs.v1` JSON
//! schema ([`SCHEMA`]); [`json::validate_obs_json`] is the in-tree
//! validator (mirroring the `BENCH_*.json` pattern in
//! `flowplace-bench`), and [`summary::summarize`] renders a dump as a
//! human table for `flowplace obs summarize`.
//!
//! # Determinism rules
//!
//! 1. A span's duration is measured in **ticks** (one tick is consumed
//!    by every span begin and every span end) and in **virtual
//!    milliseconds** (advanced only by [`Recorder::set_virtual_ms`],
//!    which the controller syncs from its fault clock). Wall time is
//!    deliberately not recorded.
//! 2. Metrics only ever hold integers; no floats means no
//!    formatting-dependent output.
//! 3. Dumps iterate `BTreeMap`s and id-ordered vectors, so the byte
//!    stream is a pure function of the recorded events.
//!
//! Instrumented code takes `Option<&Obs>` (the same pattern as
//! `Option<&WarmCache>` in the warm path): `None` compiles to the
//! uninstrumented fast path and observability stays strictly
//! effect-free.
//!
//! ```
//! use flowplace_obs::Obs;
//!
//! let obs = Obs::new();
//! {
//!     let pipeline = obs.spans.enter("pipeline");
//!     pipeline.attr("ingresses", 3u64);
//!     let stage = obs.spans.enter("pipeline.depgraphs");
//!     stage.attr("built", 2u64);
//!     drop(stage);
//! }
//! obs.metrics.counter_add_with("pipeline.solves", &[("provenance", "single:ilp")], 1);
//! let doc = flowplace_obs::json::validate_obs_json(&obs.trace_json()).unwrap();
//! assert_eq!(doc.kind(), "trace");
//! ```
//!
//! [`StageTimes`]: https://docs.rs/flowplace-core
//! [`WarmStats`]: https://docs.rs/flowplace-core
//! [`Recorder::set_virtual_ms`]: span::Recorder::set_virtual_ms

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod labels;
pub mod metrics;
pub mod span;
pub mod summary;

pub use json::{validate_obs_json, ObsDoc};
pub use labels::ShardLabels;
pub use metrics::{MetricValue, Registry, Sample};
pub use span::{AttrValue, Recorder, ScopedSpan, SpanData, SpanId};

/// Canonical schema tag stamped on every trace and metrics dump.
pub const SCHEMA: &str = "flowplace.obs.v1";

/// One observability context: a span recorder plus a metrics registry.
///
/// Cheap to create, `Clone` deep-copies the recorded state (useful for
/// snapshot-and-compare tests). All methods take `&self`; interior
/// mutability keeps instrumented call sites borrow-friendly.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Hierarchical span recorder (virtual clock).
    pub spans: Recorder,
    /// Typed counter/gauge/histogram registry.
    pub metrics: Registry,
}

impl Obs {
    /// Creates an empty observability context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical `flowplace.obs.v1` dump of the recorded spans
    /// (`"kind": "trace"`). Byte-identical across same-seed runs.
    pub fn trace_json(&self) -> String {
        json::trace_to_json(&self.spans)
    }

    /// Canonical `flowplace.obs.v1` dump of the metrics registry
    /// (`"kind": "metrics"`). Byte-identical across same-seed runs.
    pub fn metrics_json(&self) -> String {
        json::metrics_to_json(&self.metrics)
    }
}

/// Opens a scoped span on an [`Obs`] context and attaches literal
/// attributes, e.g. `span!(obs, "pipeline.depgraph", ingress = i)`.
///
/// Expands to [`Recorder::enter`] followed by one
/// [`ScopedSpan::attr`] call per `key = value` pair; the span ends when
/// the returned guard drops.
///
/// [`Recorder::enter`]: span::Recorder::enter
/// [`ScopedSpan::attr`]: span::ScopedSpan::attr
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let guard = $obs.spans.enter($name);
        $(guard.attr(stringify!($key), $value);)*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trips_both_kinds() {
        let obs = Obs::new();
        {
            let _root = span!(obs, "root", items = 2u64);
        }
        obs.metrics.counter_add("events", 3);
        let trace = validate_obs_json(&obs.trace_json()).unwrap();
        assert_eq!(trace.kind(), "trace");
        let metrics = validate_obs_json(&obs.metrics_json()).unwrap();
        assert_eq!(metrics.kind(), "metrics");
    }

    #[test]
    fn clone_is_a_deep_snapshot() {
        let obs = Obs::new();
        obs.metrics.counter_add("n", 1);
        let snap = obs.clone();
        obs.metrics.counter_add("n", 1);
        assert_eq!(snap.metrics.counter_value("n", &[]), 1);
        assert_eq!(obs.metrics.counter_value("n", &[]), 2);
    }
}

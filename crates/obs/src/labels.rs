//! Pre-rendered label values for high-cardinality sharded telemetry.
//!
//! The metrics registry takes labels as `&[(&str, &str)]`, so emitting a
//! per-shard counter every epoch would otherwise `format!` the same
//! `"shard{id}"` string over and over on the hot path. [`ShardLabels`]
//! renders the whole label set once at controller construction; lookups
//! are a slice index. Span names follow the same `ctrl.shard{id}`
//! namespace so a trace dump groups by shard with a plain prefix match.

/// Pre-rendered `shard{id}` label values (and `ctrl.shard{id}` span
/// names) for a fixed shard count.
#[derive(Clone, Debug)]
pub struct ShardLabels {
    values: Vec<String>,
    span_names: Vec<String>,
}

impl ShardLabels {
    /// Renders labels for shards `0..shards`.
    pub fn new(shards: u32) -> Self {
        ShardLabels {
            values: (0..shards).map(|i| format!("shard{i}")).collect(),
            span_names: (0..shards).map(|i| format!("ctrl.shard{i}")).collect(),
        }
    }

    /// Number of shards the labels were rendered for.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when rendered for zero shards.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `shard{id}` label value for counters and gauges.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the rendered range.
    pub fn value(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    /// The `ctrl.shard{id}` span name.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the rendered range.
    pub fn span_name(&self, id: u32) -> &str {
        &self.span_names[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render_the_shard_namespace() {
        let labels = ShardLabels::new(4);
        assert_eq!(labels.len(), 4);
        assert_eq!(labels.value(0), "shard0");
        assert_eq!(labels.value(3), "shard3");
        assert_eq!(labels.span_name(2), "ctrl.shard2");
    }

    #[test]
    #[should_panic]
    fn out_of_range_shard_panics() {
        ShardLabels::new(2).value(2);
    }
}

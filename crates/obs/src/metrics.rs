//! Typed metrics registry: counters, gauges, histograms.
//!
//! Metrics are keyed by a name plus a sorted label set, so
//! `tcam.occupancy{switch=s2}` and `tcam.occupancy{switch=s3}` are
//! distinct series. Every value is an integer — the registry stores no
//! floats and reads no clocks, which is what makes the canonical dump
//! byte-identical across same-seed runs (see the crate docs).
//!
//! A metric's type is fixed by its first write; mixing types on one
//! series (`counter_add` then `gauge_set`) is an instrumentation bug
//! and panics with the offending name.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// Upper bucket bounds for histograms (inclusive `value <= bound`);
/// an implicit overflow bucket catches everything above the last bound.
pub const HISTOGRAM_BOUNDS: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Histogram state: bucket counts against [`HISTOGRAM_BOUNDS`], plus
/// total sum and count for mean queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// One count per bound in [`HISTOGRAM_BOUNDS`], plus a final
    /// overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BOUNDS.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Mean of the observed values, rounded down; 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Current value of one metric series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time level (may go down, may be negative).
    Gauge(i64),
    /// Distribution of observed values.
    Histogram(Histogram),
}

impl MetricValue {
    /// The JSON `"type"` tag for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One series in a registry snapshot: name, sorted labels, value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric name, dot-separated by convention (`"warm.memo_hits"`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: MetricValue,
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v}")?;
            }
            write!(f, "}}")?;
        }
        match &self.value {
            MetricValue::Counter(v) => write!(f, " = {v}"),
            MetricValue::Gauge(v) => write!(f, " = {v}"),
            MetricValue::Histogram(h) => {
                write!(f, " = count {} sum {} mean {}", h.count, h.sum, h.mean())
            }
        }
    }
}

type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

/// Metrics registry. All methods take `&self`; state lives behind a
/// `RefCell` so instrumented call sites stay borrow-friendly.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: RefCell<BTreeMap<Key, MetricValue>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the unlabeled counter `name`.
    pub fn counter_add(&self, name: &str, by: u64) {
        self.counter_add_with(name, &[], by);
    }

    /// Adds `by` to the counter `name{labels}`.
    pub fn counter_add_with(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner
            .entry(key(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += by,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets the counter `name{labels}` to the absolute value `total`.
    ///
    /// For mirroring an externally accumulated count (e.g. a
    /// `CtrlStats` field) onto the registry without double counting;
    /// `total` must be monotone across calls, which is debug-asserted.
    pub fn counter_set_with(&self, name: &str, labels: &[(&str, &str)], total: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner
            .entry(key(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => {
                debug_assert!(*v <= total, "counter {name} moved backwards");
                *v = total;
            }
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets the unlabeled gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.gauge_set_with(name, &[], value);
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set_with(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        let mut inner = self.inner.borrow_mut();
        match inner
            .entry(key(name, labels))
            .or_insert(MetricValue::Gauge(0))
        {
            MetricValue::Gauge(v) => *v = value,
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Records `value` into the unlabeled histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, &[], value);
    }

    /// Records `value` into the histogram `name{labels}`.
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], value: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner
            .entry(key(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Current value of the counter `name{labels}`; 0 if never written.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.inner.borrow().get(&key(name, labels)) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Current value of the gauge `name{labels}`, if ever written.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.inner.borrow().get(&key(name, labels)) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Snapshot of the histogram `name{labels}`, if ever written.
    pub fn histogram_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        match self.inner.borrow().get(&key(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Number of series in the registry.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if no metric was ever written.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Snapshot of every series, sorted by (name, labels) — the order
    /// the canonical dump uses.
    pub fn snapshot(&self) -> Vec<Sample> {
        self.inner
            .borrow()
            .iter()
            .map(|((name, labels), value)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                value: value.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = Registry::new();
        reg.counter_add("solves", 1);
        reg.counter_add_with("solves", &[("provenance", "memo")], 2);
        reg.counter_add_with("solves", &[("provenance", "memo")], 1);
        assert_eq!(reg.counter_value("solves", &[]), 1);
        assert_eq!(reg.counter_value("solves", &[("provenance", "memo")]), 3);
        assert_eq!(reg.counter_value("missing", &[]), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter_add_with("m", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add_with("m", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.counter_value("m", &[("b", "2"), ("a", "1")]), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn counter_set_mirrors_external_totals() {
        let reg = Registry::new();
        reg.counter_set_with("ctrl.epochs", &[], 3);
        reg.counter_set_with("ctrl.epochs", &[], 5);
        assert_eq!(reg.counter_value("ctrl.epochs", &[]), 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        reg.gauge_set("occ", 5);
        reg.gauge_set("occ", 2);
        reg.gauge_set_with("occ", &[("switch", "s1")], -1);
        assert_eq!(reg.gauge_value("occ", &[]), Some(2));
        assert_eq!(reg.gauge_value("occ", &[("switch", "s1")]), Some(-1));
        assert_eq!(reg.gauge_value("missing", &[]), None);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let reg = Registry::new();
        for v in [0, 1, 3, 10, 20000] {
            reg.observe("lat", v);
        }
        let h = reg.histogram_value("lat", &[]).unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 20014);
        assert_eq!(h.mean(), 4002);
        assert_eq!(h.buckets[0], 2); // 0 and 1 both land in `<= 1`
        assert_eq!(h.buckets.last(), Some(&1)); // 20000 overflows
        assert_eq!(h.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let reg = Registry::new();
        reg.counter_add("n", 1);
        reg.gauge_set("n", 1);
    }

    #[test]
    fn snapshot_is_sorted_and_displayable() {
        let reg = Registry::new();
        reg.gauge_set_with("tcam.occupancy", &[("switch", "s1")], 4);
        reg.counter_add("a.events", 2);
        let snap = reg.snapshot();
        assert_eq!(snap[0].name, "a.events");
        assert_eq!(snap[1].to_string(), "tcam.occupancy{switch=s1} = 4");
    }
}

//! Human-readable rendering of validated obs documents, backing the
//! `flowplace obs summarize` subcommand.
//!
//! Traces collapse into a per-name table (call count, total/mean tick
//! and virtual-ms cost); metrics render as three sections (counters,
//! gauges, histograms), with TCAM occupancy joined against capacity
//! when both gauges are present.

use crate::json::{MetricsDoc, ObsDoc, TraceDoc};
use crate::metrics::MetricValue;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.len();
            // Right-align everything but the first (label) column.
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    render_row(&mut out, &header);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&mut out, &rule);
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

fn summarize_trace(trace: &TraceDoc) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        open: u64,
        ticks: u64,
        ms: u64,
    }
    let mut by_name: BTreeMap<&str, Agg> = BTreeMap::new();
    for span in &trace.spans {
        let agg = by_name.entry(span.name.as_str()).or_default();
        agg.count += 1;
        match span.duration_ticks() {
            Some(t) => {
                agg.ticks += t;
                agg.ms += span.duration_ms().unwrap_or(0);
            }
            None => agg.open += 1,
        }
    }
    let rows: Vec<Vec<String>> = by_name
        .iter()
        .map(|(name, agg)| {
            let closed = agg.count - agg.open;
            let mean = agg.ticks.checked_div(closed).unwrap_or(0);
            vec![
                name.to_string(),
                agg.count.to_string(),
                agg.open.to_string(),
                agg.ticks.to_string(),
                mean.to_string(),
                agg.ms.to_string(),
            ]
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} spans, final tick {}, final virtual ms {}, mis-nested {}",
        trace.spans.len(),
        trace.final_tick,
        trace.final_virtual_ms,
        trace.mis_nested
    );
    out.push('\n');
    out.push_str(&render_table(
        &["span", "count", "open", "ticks", "mean", "vms"],
        &rows,
    ));
    out
}

fn labels_text(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", pairs.join(","))
}

fn summarize_metrics(metrics: &MetricsDoc) -> String {
    let mut counters: Vec<Vec<String>> = Vec::new();
    let mut gauges: Vec<Vec<String>> = Vec::new();
    let mut histograms: Vec<Vec<String>> = Vec::new();
    for row in &metrics.metrics {
        let series = format!("{}{}", row.name, labels_text(&row.labels));
        match &row.value {
            MetricValue::Counter(v) => counters.push(vec![series, v.to_string()]),
            MetricValue::Gauge(v) => gauges.push(vec![series, v.to_string()]),
            MetricValue::Histogram(h) => histograms.push(vec![
                series,
                h.count.to_string(),
                h.sum.to_string(),
                h.mean().to_string(),
            ]),
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "metrics: {} series", metrics.metrics.len());
    if !counters.is_empty() {
        out.push('\n');
        out.push_str(&render_table(&["counter", "value"], &counters));
    }
    if !gauges.is_empty() {
        out.push('\n');
        out.push_str(&render_table(&["gauge", "value"], &gauges));
    }
    if !histograms.is_empty() {
        out.push('\n');
        out.push_str(&render_table(
            &["histogram", "count", "sum", "mean"],
            &histograms,
        ));
    }
    out
}

/// Renders a validated document as a plain-text summary table.
pub fn summarize(doc: &ObsDoc) -> String {
    match doc {
        ObsDoc::Trace(trace) => summarize_trace(trace),
        ObsDoc::Metrics(metrics) => summarize_metrics(metrics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_obs_json;
    use crate::Obs;

    #[test]
    fn trace_summary_aggregates_by_name() {
        let obs = Obs::new();
        for i in 0..3u64 {
            let root = obs.spans.enter("ctrl.epoch");
            root.attr("epoch", i);
            let _child = obs.spans.enter("ctrl.commit");
        }
        let doc = validate_obs_json(&obs.trace_json()).unwrap();
        let text = summarize(&doc);
        assert!(text.contains("trace: 6 spans"), "{text}");
        assert!(text.contains("ctrl.epoch"), "{text}");
        assert!(text.contains("ctrl.commit"), "{text}");
    }

    #[test]
    fn metrics_summary_sections() {
        let obs = Obs::new();
        obs.metrics.counter_add("ctrl.events_in", 53);
        obs.metrics
            .gauge_set_with("tcam.occupancy", &[("switch", "s1")], 9);
        obs.metrics.observe("pipeline.solve_cost", 12);
        let doc = validate_obs_json(&obs.metrics_json()).unwrap();
        let text = summarize(&doc);
        assert!(text.contains("metrics: 3 series"), "{text}");
        assert!(text.contains("ctrl.events_in"), "{text}");
        assert!(text.contains("tcam.occupancy{switch=s1}"), "{text}");
        assert!(text.contains("pipeline.solve_cost"), "{text}");
    }

    #[test]
    fn labeled_counter_families_render_one_series_per_label() {
        // The controller's delegation lifecycle is mirrored as one
        // labeled counter family (ctrl.delegate.events) plus labeled
        // outcome counts; the summary must keep each label a distinct,
        // greppable series rather than collapsing the family.
        let obs = Obs::new();
        for kind in ["created", "rehomed", "torn-down", "undelegated"] {
            obs.metrics
                .counter_add_with("ctrl.delegate.events", &[("kind", kind)], 1);
        }
        obs.metrics
            .counter_add_with("ctrl.outcomes", &[("outcome", "applied:delegated")], 2);
        let doc = validate_obs_json(&obs.metrics_json()).unwrap();
        let text = summarize(&doc);
        assert!(text.contains("metrics: 5 series"), "{text}");
        for kind in ["created", "rehomed", "torn-down", "undelegated"] {
            assert!(
                text.contains(&format!("ctrl.delegate.events{{kind={kind}}}")),
                "missing {kind} series in:\n{text}"
            );
        }
        assert!(
            text.contains("ctrl.outcomes{outcome=applied:delegated}"),
            "{text}"
        );
    }

    #[test]
    fn summary_is_deterministic() {
        let build = || {
            let obs = Obs::new();
            obs.metrics.counter_add("b", 1);
            obs.metrics.counter_add("a", 2);
            summarize(&validate_obs_json(&obs.metrics_json()).unwrap())
        };
        assert_eq!(build(), build());
    }
}

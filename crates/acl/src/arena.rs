//! Reusable buffer pool backing the cube-list algebra.
//!
//! The exact set operations in [`crate::CubeList`] are built on one
//! primitive — the TCAM "sharp" split, which rewrites a cube list into a
//! fresh buffer. Under redundancy removal and candidate rebuilds that
//! primitive runs millions of times per epoch, and a fresh `Vec` per call
//! dominates the allocator profile. [`CubeArena`] pools the scratch
//! buffers so steady-state epochs allocate ~zero: a buffer is taken from
//! the pool, used for one operation, cleared, and returned with its
//! capacity intact.
//!
//! Every public `CubeList` operation routes through a thread-local arena
//! automatically (see [`crate::CubeList::subtract`]), so existing callers
//! pool without code changes. Hot loops that want isolated accounting —
//! the redundancy pre-pass, the micro benchmark — hold their own arena
//! and call the `*_in` variants.

use crate::Ternary;

/// Counters describing how well a [`CubeArena`] is amortising allocations.
///
/// Surfaced as observability gauges (`arena_*`) and in the committed
/// `BENCH_micro.json` report; see DESIGN.md §16.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Fresh buffers created because the pool was empty. In steady state
    /// this stops growing: the pool high-water mark has been reached.
    pub allocations: u64,
    /// Buffers served from the pool instead of the allocator.
    pub reuse_hits: u64,
    /// High-water mark, in bytes, of backing storage retained by the
    /// pool (measured at buffer return, when capacity is known).
    pub peak_bytes: u64,
}

impl ArenaStats {
    /// Fraction of buffer requests served from the pool, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.allocations + self.reuse_hits;
        if total == 0 {
            0.0
        } else {
            self.reuse_hits as f64 / total as f64
        }
    }
}

/// A pool of `Vec<Ternary>` scratch buffers with reuse accounting.
///
/// Buffers are handed out empty ([`take`](Self::take)) and returned
/// cleared but with capacity intact ([`put`](Self::put)), so repeated
/// cube algebra reuses the same backing storage. The arena is a plain
/// value — hold one per hot loop for isolated [`ArenaStats`], or rely on
/// the thread-local arena behind the `CubeList` convenience methods.
#[derive(Debug, Default)]
pub struct CubeArena {
    pool: Vec<Vec<Ternary>>,
    pooled_bytes: u64,
    stats: ArenaStats,
}

impl CubeArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Zeroes the counters, keeping pooled buffers (and their capacity).
    pub fn reset_stats(&mut self) {
        self.stats = ArenaStats::default();
    }

    /// Number of buffers currently resting in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Takes an empty scratch buffer, reusing pooled capacity when
    /// available.
    pub fn take(&mut self) -> Vec<Ternary> {
        match self.pool.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty());
                self.pooled_bytes = self.pooled_bytes.saturating_sub(capacity_bytes(&buf));
                self.stats.reuse_hits += 1;
                buf
            }
            None => {
                self.stats.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool. The contents are discarded; the
    /// capacity is kept for the next [`take`](Self::take).
    pub fn put(&mut self, mut buf: Vec<Ternary>) {
        buf.clear();
        self.pooled_bytes += capacity_bytes(&buf);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.pooled_bytes);
        self.pool.push(buf);
    }
}

fn capacity_bytes(buf: &Vec<Ternary>) -> u64 {
    (buf.capacity() * std::mem::size_of::<Ternary>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_counts_allocation() {
        let mut arena = CubeArena::new();
        let buf = arena.take();
        assert!(buf.is_empty());
        assert_eq!(arena.stats().allocations, 1);
        assert_eq!(arena.stats().reuse_hits, 0);
        arena.put(buf);
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn take_after_put_reuses_capacity() {
        let mut arena = CubeArena::new();
        let mut buf = arena.take();
        buf.reserve(64);
        let cap = buf.capacity();
        arena.put(buf);
        let buf = arena.take();
        assert!(buf.capacity() >= cap, "pooled capacity was dropped");
        assert!(buf.is_empty(), "pooled buffer not cleared");
        assert_eq!(arena.stats().allocations, 1);
        assert_eq!(arena.stats().reuse_hits, 1);
    }

    #[test]
    fn peak_bytes_tracks_pool_high_water_mark() {
        let mut arena = CubeArena::new();
        let mut a = arena.take();
        let mut b = arena.take();
        a.reserve_exact(10);
        b.reserve_exact(20);
        let elem = std::mem::size_of::<Ternary>() as u64;
        arena.put(a);
        arena.put(b);
        let expected = 30 * elem;
        assert!(
            arena.stats().peak_bytes >= expected,
            "peak {} < expected {}",
            arena.stats().peak_bytes,
            expected
        );
        // Taking both back out does not lower the recorded peak.
        let peak = arena.stats().peak_bytes;
        let _a = arena.take();
        let _b = arena.take();
        assert_eq!(arena.stats().peak_bytes, peak);
    }

    #[test]
    fn reuse_ratio_bounds() {
        let mut arena = CubeArena::new();
        assert_eq!(arena.stats().reuse_ratio(), 0.0);
        let buf = arena.take();
        arena.put(buf);
        let buf = arena.take();
        arena.put(buf);
        let ratio = arena.stats().reuse_ratio();
        assert!((0.0..=1.0).contains(&ratio));
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_pool() {
        let mut arena = CubeArena::new();
        let mut buf = arena.take();
        buf.reserve(8);
        arena.put(buf);
        arena.reset_stats();
        assert_eq!(arena.stats(), ArenaStats::default());
        assert_eq!(arena.pooled(), 1);
    }
}

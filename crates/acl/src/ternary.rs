//! Fixed-width ternary match fields.

use std::fmt;
use std::str::FromStr;

use crate::Packet;

/// Maximum supported match-field width in bits.
///
/// Headers are stored in a `u128`, which comfortably covers the classic
/// 104-bit IPv4 5-tuple used by packet classifiers.
pub const MAX_WIDTH: u32 = 128;

/// A ternary match field: an array of `{0, 1, *}` elements, as used in the
/// matching part of an OpenFlow/TCAM rule.
///
/// Internally a pair of bit masks over the low `width` bits of a `u128`:
/// `care` selects the positions that must match exactly and `value` holds the
/// required bit at each cared position. Bits of `value` outside `care`, and
/// bits of both masks at or above `width`, are always zero (a canonical form
/// that makes `Eq`/`Hash` structural equality).
///
/// Bit `0` is the least-significant header bit; the textual form produced by
/// [`Ternary::parse`]/`Display` writes the most-significant bit first.
///
/// # Example
///
/// ```
/// use flowplace_acl::{Packet, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = Ternary::parse("1*0")?; // matches 100 and 110
/// assert!(t.matches(&Packet::from_bits(0b100, 3)));
/// assert!(t.matches(&Packet::from_bits(0b110, 3)));
/// assert!(!t.matches(&Packet::from_bits(0b101, 3)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ternary {
    width: u32,
    care: u128,
    value: u128,
}

/// Error returned when parsing a ternary string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTernaryError {
    /// The string was empty or longer than [`MAX_WIDTH`] characters.
    BadWidth(usize),
    /// A character other than `0`, `1`, or `*` was found.
    BadChar(char),
}

impl fmt::Display for ParseTernaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTernaryError::BadWidth(w) => {
                write!(f, "ternary width {w} not in 1..={MAX_WIDTH}")
            }
            ParseTernaryError::BadChar(c) => {
                write!(f, "invalid ternary character {c:?} (expected 0, 1, or *)")
            }
        }
    }
}

impl std::error::Error for ParseTernaryError {}

impl Ternary {
    /// Creates a ternary field from raw `care`/`value` masks.
    ///
    /// Bits of `value` outside `care` and bits above `width` are cleared,
    /// so any input produces a canonical field.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn new(width: u32, care: u128, value: u128) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "ternary width {width} not in 1..={MAX_WIDTH}"
        );
        let wmask = Self::width_mask(width);
        let care = care & wmask;
        Ternary {
            width,
            care,
            value: value & care,
        }
    }

    /// The all-wildcard field (`*...*`) of the given width, matching every
    /// packet.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn any(width: u32) -> Self {
        Ternary::new(width, 0, 0)
    }

    /// A fully specified field matching exactly the packet `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn exact(width: u32, bits: u128) -> Self {
        let wmask = Self::width_mask(width);
        Ternary::new(width, wmask, bits)
    }

    /// Parses a ternary string such as `"10**1"`, most-significant bit first.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTernaryError`] if the string is empty, longer than
    /// [`MAX_WIDTH`], or contains characters other than `0`, `1`, `*`.
    pub fn parse(s: &str) -> Result<Self, ParseTernaryError> {
        let n = s.chars().count();
        if n == 0 || n > MAX_WIDTH as usize {
            return Err(ParseTernaryError::BadWidth(n));
        }
        let mut care = 0u128;
        let mut value = 0u128;
        for c in s.chars() {
            care <<= 1;
            value <<= 1;
            match c {
                '0' => care |= 1,
                '1' => {
                    care |= 1;
                    value |= 1;
                }
                '*' => {}
                other => return Err(ParseTernaryError::BadChar(other)),
            }
        }
        Ok(Ternary::new(n as u32, care, value))
    }

    fn width_mask(width: u32) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    }

    /// The field width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The care mask: bit `i` set means position `i` must match exactly.
    pub fn care(&self) -> u128 {
        self.care
    }

    /// The value mask restricted to cared positions.
    pub fn value(&self) -> u128 {
        self.value
    }

    /// Number of wildcard (`*`) positions.
    pub fn wildcard_count(&self) -> u32 {
        self.width - self.care.count_ones()
    }

    /// Number of distinct packets matched (2^wildcards), saturating at
    /// `u128::MAX` for the 128-bit all-wildcard field.
    pub fn cardinality(&self) -> u128 {
        let w = self.wildcard_count();
        if w >= 128 {
            u128::MAX
        } else {
            1u128 << w
        }
    }

    /// Tests whether the packet header matches this field.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the packet width differs from the field
    /// width.
    pub fn matches(&self, packet: &Packet) -> bool {
        debug_assert_eq!(
            self.width,
            packet.width(),
            "packet width must equal match-field width"
        );
        (packet.bits() ^ self.value) & self.care == 0
    }

    /// Tests whether the two fields share at least one packet.
    ///
    /// Two ternary fields intersect iff they agree on every position both
    /// care about.
    pub fn intersects(&self, other: &Ternary) -> bool {
        debug_assert_eq!(self.width, other.width);
        (self.value ^ other.value) & self.care & other.care == 0
    }

    /// The intersection of the two fields, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Ternary) -> Option<Ternary> {
        if !self.intersects(other) {
            return None;
        }
        Some(Ternary {
            width: self.width,
            care: self.care | other.care,
            value: self.value | other.value,
        })
    }

    /// Tests whether `self` matches every packet `other` matches
    /// (`other ⊆ self`).
    pub fn subsumes(&self, other: &Ternary) -> bool {
        debug_assert_eq!(self.width, other.width);
        // Every position self cares about must also be cared about by other
        // with the same value.
        self.care & !other.care == 0 && (self.value ^ other.value) & self.care == 0
    }

    /// An arbitrary packet matched by this field (wildcards set to zero).
    pub fn sample_packet(&self) -> Packet {
        Packet::from_bits(self.value, self.width)
    }

    /// The packet matched by this field with all wildcards set to one.
    pub fn max_packet(&self) -> Packet {
        let wmask = Self::width_mask(self.width);
        Packet::from_bits(self.value | (!self.care & wmask), self.width)
    }

    /// Iterates over all packets matched by this field.
    ///
    /// Intended for tests; the iterator yields `2^wildcards` packets.
    ///
    /// # Panics
    ///
    /// Panics if the field has more than 20 wildcard bits.
    pub fn iter_packets(&self) -> impl Iterator<Item = Packet> + '_ {
        let wc = self.wildcard_count();
        assert!(wc <= 20, "too many wildcards to enumerate ({wc})");
        let wmask = Self::width_mask(self.width);
        let free_positions: Vec<u32> = (0..self.width)
            .filter(|i| self.care & (1u128 << i) == 0)
            .collect();
        let count: u64 = 1u64 << wc;
        let base = self.value & wmask;
        (0..count).map(move |combo| {
            let mut bits = base;
            for (j, &pos) in free_positions.iter().enumerate() {
                if combo & (1u64 << j) != 0 {
                    bits |= 1u128 << pos;
                }
            }
            Packet::from_bits(bits, self.width)
        })
    }
}

impl fmt::Display for Ternary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            let bit = 1u128 << i;
            let c = if self.care & bit == 0 {
                '*'
            } else if self.value & bit != 0 {
                '1'
            } else {
                '0'
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Ternary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ternary({self})")
    }
}

impl FromStr for Ternary {
    type Err = ParseTernaryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ternary::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in ["0", "1", "*", "10**1", "****", "1111", "0*0*0"] {
            let t = Ternary::parse(s).unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(Ternary::parse(""), Err(ParseTernaryError::BadWidth(0)));
        assert_eq!(Ternary::parse("10x"), Err(ParseTernaryError::BadChar('x')));
        let long = "1".repeat(129);
        assert_eq!(Ternary::parse(&long), Err(ParseTernaryError::BadWidth(129)));
    }

    #[test]
    fn parse_128_bit_ok() {
        let s = "*".repeat(128);
        let t = Ternary::parse(&s).unwrap();
        assert_eq!(t.width(), 128);
        assert_eq!(t.cardinality(), u128::MAX);
    }

    #[test]
    fn canonical_form_clears_stray_bits() {
        // Value bits outside care and above width must be dropped.
        let t = Ternary::new(4, 0b0011, 0b1111);
        assert_eq!(t.value(), 0b0011);
        let u = Ternary::new(4, 0xFF, 0);
        assert_eq!(u.care(), 0b1111);
        assert_eq!(t, Ternary::new(4, 0b0011, 0b0011));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Ternary::any(0);
    }

    #[test]
    fn matches_basics() {
        let t = Ternary::parse("1*0").unwrap();
        assert!(t.matches(&Packet::from_bits(0b100, 3)));
        assert!(t.matches(&Packet::from_bits(0b110, 3)));
        assert!(!t.matches(&Packet::from_bits(0b000, 3)));
        assert!(!t.matches(&Packet::from_bits(0b101, 3)));
    }

    #[test]
    fn any_matches_everything() {
        let t = Ternary::any(5);
        for bits in 0..32u128 {
            assert!(t.matches(&Packet::from_bits(bits, 5)));
        }
        assert_eq!(t.cardinality(), 32);
    }

    #[test]
    fn exact_matches_one() {
        let t = Ternary::exact(5, 0b10110);
        assert_eq!(t.cardinality(), 1);
        assert!(t.matches(&Packet::from_bits(0b10110, 5)));
        assert!(!t.matches(&Packet::from_bits(0b10111, 5)));
    }

    #[test]
    fn intersection_agrees_with_matches() {
        let a = Ternary::parse("1**0").unwrap();
        let b = Ternary::parse("10*1").unwrap();
        assert!(!a.intersects(&b)); // disagree on bit 0
        let c = Ternary::parse("10**").unwrap();
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.to_string(), "10*0");
    }

    #[test]
    fn subsumes_reflexive_and_ordering() {
        let wide = Ternary::parse("1***").unwrap();
        let narrow = Ternary::parse("10*1").unwrap();
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(wide.subsumes(&wide));
    }

    #[test]
    fn disjoint_not_subsumed() {
        let a = Ternary::parse("0*").unwrap();
        let b = Ternary::parse("1*").unwrap();
        assert!(!a.subsumes(&b));
        assert!(!b.subsumes(&a));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn iter_packets_enumerates_exactly_matching() {
        let t = Ternary::parse("1**0").unwrap();
        let packets: Vec<_> = t.iter_packets().collect();
        assert_eq!(packets.len(), 4);
        for p in &packets {
            assert!(t.matches(p));
        }
        // All distinct.
        let mut bits: Vec<u128> = packets.iter().map(|p| p.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 4);
    }

    #[test]
    fn sample_and_max_packets_match() {
        let t = Ternary::parse("1*0*").unwrap();
        assert!(t.matches(&t.sample_packet()));
        assert!(t.matches(&t.max_packet()));
        assert_eq!(t.sample_packet().bits(), 0b1000);
        assert_eq!(t.max_packet().bits(), 0b1101);
    }

    #[test]
    fn display_debug_nonempty() {
        let t = Ternary::parse("1*").unwrap();
        assert_eq!(format!("{t:?}"), "Ternary(1*)");
    }
}

//! Batched first-match packet classification.
//!
//! The scalar matching path — [`Ternary::matches`] in a priority-ordered
//! scan — is exact but does one cube probe per packet per cube. The
//! verifier's sampled no-false-negative checks and the controller's TCAM
//! cache both classify *many* packets against the *same* rule list, so
//! this module amortises the scan:
//!
//! * Cubes are stored structure-of-arrays ([`BatchClassifier`]): the
//!   `care`/`value` masks sit in separate contiguous vectors, so the
//!   inner loop streams two `u128` arrays instead of chasing struct
//!   fields.
//! * Classification keeps a worklist of still-unmatched packets and
//!   exits as soon as it empties — matched packets are never re-probed
//!   by lower-priority cubes.
//! * Before scanning the worklist, each cube is tested against OR/AND
//!   aggregates of the live packet bits: if a cared-1 bit is 0 in every
//!   live packet (or a cared-0 bit is 1 in every live packet) the cube
//!   can match nothing and the whole scan is skipped in O(1).
//! * Rule lists whose cubes cluster on few distinct care masks — the
//!   shape ClassBench-style prefix rules produce — switch to a grouped
//!   *tuple-space* layout: cubes sharing a `(width, care)` mask collapse
//!   into one sorted value table, so a packet is classified with one
//!   masked binary search per distinct mask instead of one probe per
//!   cube, with an early exit once no remaining group can beat the best
//!   match found so far.
//! * The grouped layout carries a byte-index prefilter: per packet-byte
//!   elimination tables AND away every group with no entry agreeing on
//!   that byte, so a typical packet probes only the one or two groups
//!   that could actually match it (and a total miss probes none).
//!
//! Semantics are identical to the scalar scan with one deliberate
//! widening: a cube whose width differs from the packet's width simply
//! does not match (the scalar [`Ternary::matches`] `debug_assert`s equal
//! widths instead). This lets the same kernel serve the controller cache,
//! whose lookup path checks widths explicitly.

use flowplace_fasthash::FnvHashMap;

use crate::{Packet, Ternary};

/// Per-group hot probe data, 32 bytes so the scan over all groups
/// streams one small contiguous array.
#[derive(Clone, Copy, Debug)]
struct GroupKey {
    care: u128,
    /// One bit per entry's folded masked value: a packet whose folded
    /// key misses the signature cannot match any entry, so the binary
    /// search is skipped — the common case for a total-miss packet,
    /// which otherwise pays a search in every group.
    sig: u64,
    /// Lowest cube index anywhere in the group — the best verdict this
    /// group can possibly produce, used for the cross-group early exit.
    min_index: u32,
    width: u32,
}

/// The tuple-space layout: cubes sharing a `(width, care)` mask collapse
/// into one value table mapping each distinct masked value to the
/// highest-priority (lowest) cube index carrying it. Groups are stored
/// in ascending `min_index` order; `spans[i]` is the `(offset, len)` of
/// group `i`'s sorted slice of `entries`.
///
/// Capped at 64 groups so one `u64` names a set of groups, which powers
/// the byte-index prefilter: for every packet-byte position `j` and byte
/// value `v`, `elim[j * 256 + v]` holds the groups that *cannot* match
/// any packet whose byte `j` equals `v` — a group lands there unless
/// `v` masked by the group's care byte equals some entry's byte at that
/// position. A packet ANDs away eliminated groups with one table load
/// per byte (branchless), and only the few surviving groups are
/// actually probed. This is exact per byte: a singleton group — the
/// bulk of a ClassBench-style mask distribution — survives only if the
/// packet matches it byte-for-byte on every indexed cared bit, so a
/// total-miss packet usually zeroes the candidate set in one or two
/// loads.
#[derive(Clone, Debug)]
struct TupleLayout {
    keys: Vec<GroupKey>,
    spans: Vec<(u32, u32)>,
    /// `(value & care, cube index)` per group, sorted by masked value.
    entries: Vec<(u128, u32)>,
    /// Byte-index elimination tables, `nbytes * 256` long: groups ruled
    /// out when packet byte `j` has value `v` sit in `elim[j * 256 + v]`.
    elim: Vec<u64>,
    /// Number of indexed byte positions: the widest group width in
    /// bytes, capped at 8 (bits past 64 simply go unindexed — sound,
    /// just unpruned).
    nbytes: u32,
    /// Bitmask naming every group.
    all_mask: u64,
}

/// One `u64` must name every group — layouts with more distinct masks
/// fall back to the linear scan.
const TUPLE_MAX_GROUPS: usize = 64;

/// Folds a masked value to one of 64 signature bits. Any mixer works as
/// long as it is deterministic and equal inputs fold equally (false
/// positives only cost a confirming search); one golden-ratio multiply
/// over the xor-folded halves spreads the top bits well enough.
fn sig_bit(v: u128) -> u64 {
    let h = ((v >> 64) as u64 ^ v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    1u64 << (h >> 58)
}

/// Grouped layouts only pay off when masks are actually shared: below
/// this cube count, or when most masks are distinct, the linear scan's
/// two-array stream wins.
const TUPLE_MIN_CUBES: usize = 16;

fn build_tuple_layout(cubes: &[Ternary]) -> Option<TupleLayout> {
    if cubes.len() < TUPLE_MIN_CUBES {
        return None;
    }
    // Probe-only map (never iterated): group id per (width, care) mask.
    let mut by_mask: FnvHashMap<(u32, u128), usize> = FnvHashMap::default();
    let mut keys: Vec<GroupKey> = Vec::new();
    let mut tables: Vec<Vec<(u128, u32)>> = Vec::new();
    for (i, c) in cubes.iter().enumerate() {
        let gi = *by_mask.entry((c.width(), c.care())).or_insert_with(|| {
            keys.push(GroupKey {
                care: c.care(),
                sig: 0,
                min_index: i as u32,
                width: c.width(),
            });
            tables.push(Vec::new());
            keys.len() - 1
        });
        let masked = c.value() & c.care();
        // Cubes arrive in priority order, so the first index per masked
        // value is the winning one; shadowed duplicates are dropped.
        if !tables[gi].iter().any(|(v, _)| *v == masked) {
            tables[gi].push((masked, i as u32));
            keys[gi].sig |= sig_bit(masked);
        }
    }
    if keys.len() * 2 > cubes.len() || keys.len() > TUPLE_MAX_GROUPS {
        return None; // masks mostly distinct (or too many for the u64
                     // group-set prefilter): grouping buys nothing
    }
    // Groups in ascending best-possible-verdict order enables the early
    // exit in `tuple_first_match`.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_unstable_by_key(|&gi| keys[gi].min_index);
    let nbytes = keys
        .iter()
        .map(|k| k.width.min(64).div_ceil(8))
        .max()
        .unwrap_or(0);
    let n_groups = keys.len();
    let mut layout = TupleLayout {
        keys: Vec::with_capacity(n_groups),
        spans: Vec::with_capacity(n_groups),
        entries: Vec::new(),
        elim: vec![0; nbytes as usize * 256],
        nbytes,
        all_mask: if n_groups == 64 {
            u64::MAX
        } else {
            (1u64 << n_groups) - 1
        },
    };
    for gi in order {
        let mut table = std::mem::take(&mut tables[gi]);
        table.sort_unstable();
        let g = layout.keys.len();
        for j in 0..nbytes as usize {
            let care_b = (keys[gi].care >> (8 * j)) as usize & 0xff;
            // 256-bit set of entry bytes at position j (entries are
            // already masked, so these are the only bytes that can
            // equal a packet's cared byte).
            let mut allowed = [0u64; 4];
            for (v, _) in &table {
                let b = (*v >> (8 * j)) as usize & 0xff;
                allowed[b >> 6] |= 1u64 << (b & 63);
            }
            for v in 0..256 {
                let m = v & care_b;
                if allowed[m >> 6] >> (m & 63) & 1 == 0 {
                    layout.elim[j * 256 + v] |= 1u64 << g;
                }
            }
        }
        layout.keys.push(keys[gi]);
        layout
            .spans
            .push((layout.entries.len() as u32, table.len() as u32));
        layout.entries.extend(table);
    }
    Some(layout)
}

fn tuple_first_match(layout: &TupleLayout, packet: &Packet) -> Option<usize> {
    let bits = packet.bits();
    let w = packet.width();
    // Branchless byte-index pass: one elimination-table load per packet
    // byte ANDs away every group that has no entry agreeing with that
    // byte. A group of width > w is typically eliminated too (its cared
    // bits past w read the packet's zero bits); width < w groups can
    // survive the pass and are rejected by the width check below.
    let mut cand = layout.all_mask;
    for j in 0..layout.nbytes as usize {
        let b = (bits >> (8 * j)) as usize & 0xff;
        cand &= !layout.elim[(j << 8) | b];
    }
    if cand == 0 {
        return None;
    }
    // Surviving candidates ascend by group index = ascending `min_index`
    // (build order), so the first-match early exit still applies.
    let mut best = u32::MAX;
    while cand != 0 {
        let gi = cand.trailing_zeros() as usize;
        cand &= cand - 1;
        let g = &layout.keys[gi];
        if g.min_index >= best {
            break; // no later group can hold a higher-priority cube
        }
        if g.width != w {
            continue;
        }
        let key = bits & g.care;
        if g.sig & sig_bit(key) == 0 {
            continue;
        }
        let (off, len) = layout.spans[gi];
        let table = &layout.entries[off as usize..(off + len) as usize];
        if let Ok(pos) = table.binary_search_by(|e| e.0.cmp(&key)) {
            best = best.min(table[pos].1);
        }
    }
    if best == u32::MAX {
        None
    } else {
        Some(best as usize)
    }
}

/// A priority-ordered rule list laid out for batched matching.
///
/// Index `i` of the constructor's cube slice becomes verdict `Some(i)`;
/// lower indices win, mirroring first-match semantics everywhere else in
/// the crate.
///
/// # Example
///
/// ```
/// use flowplace_acl::{classify::BatchClassifier, Packet, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let classifier = BatchClassifier::new(&[
///     Ternary::parse("10**")?,
///     Ternary::parse("1***")?,
/// ]);
/// let verdicts = classifier.classify(&[
///     Packet::from_bits(0b1011, 4), // first cube wins
///     Packet::from_bits(0b1111, 4), // falls to the second
///     Packet::from_bits(0b0000, 4), // matches nothing
/// ]);
/// assert_eq!(verdicts, vec![Some(0), Some(1), None]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BatchClassifier {
    care: Vec<u128>,
    value: Vec<u128>,
    widths: Vec<u32>,
    /// Set when every cube shares one width — the common case, and the
    /// precondition for the aggregate prune.
    uniform_width: Option<u32>,
    /// Tuple-space layout, present when the cube list clusters on few
    /// distinct care masks (see [`build_tuple_layout`]).
    tuple: Option<TupleLayout>,
}

impl BatchClassifier {
    /// Builds a classifier over `cubes` in priority order (index 0 is the
    /// highest priority).
    pub fn new(cubes: &[Ternary]) -> Self {
        let mut care = Vec::with_capacity(cubes.len());
        let mut value = Vec::with_capacity(cubes.len());
        let mut widths = Vec::with_capacity(cubes.len());
        for c in cubes {
            care.push(c.care());
            value.push(c.value());
            widths.push(c.width());
        }
        let uniform_width = match widths.first() {
            Some(&w) if widths.iter().all(|&x| x == w) => Some(w),
            _ => None,
        };
        let tuple = build_tuple_layout(cubes);
        BatchClassifier {
            care,
            value,
            widths,
            uniform_width,
            tuple,
        }
    }

    /// Number of cubes in the classifier.
    pub fn len(&self) -> usize {
        self.care.len()
    }

    /// True if the classifier holds no cubes (every packet misses).
    pub fn is_empty(&self) -> bool {
        self.care.is_empty()
    }

    /// True when the cube list clustered on few enough distinct care
    /// masks that the tuple-space layout is active (exposed so tests can
    /// pin that both code paths are exercised).
    pub fn is_grouped(&self) -> bool {
        self.tuple.is_some()
    }

    /// Index of the highest-priority cube matching `packet`. The
    /// single-packet entry point used by the controller cache's lookup
    /// path: one masked binary search per distinct care mask in the
    /// grouped layout, a structure-of-arrays scan otherwise.
    pub fn first_match(&self, packet: &Packet) -> Option<usize> {
        if let Some(layout) = &self.tuple {
            return tuple_first_match(layout, packet);
        }
        self.linear_first_match(packet)
    }

    fn linear_first_match(&self, packet: &Packet) -> Option<usize> {
        let bits = packet.bits();
        let w = packet.width();
        (0..self.care.len())
            .find(|&i| self.widths[i] == w && (bits ^ self.value[i]) & self.care[i] == 0)
    }

    /// Classifies every packet, returning for each the index of its
    /// highest-priority matching cube (or `None` on a total miss).
    pub fn classify(&self, packets: &[Packet]) -> Vec<Option<usize>> {
        let mut verdicts = Vec::new();
        let mut worklist = Vec::new();
        self.classify_into(packets, &mut verdicts, &mut worklist);
        verdicts
    }

    /// [`classify`](Self::classify) writing through caller-owned buffers
    /// so a loop over many batches reuses the allocations. `verdicts` is
    /// cleared and refilled; `worklist` is internal scratch.
    pub fn classify_into(
        &self,
        packets: &[Packet],
        verdicts: &mut Vec<Option<usize>>,
        worklist: &mut Vec<u32>,
    ) {
        verdicts.clear();
        verdicts.resize(packets.len(), None);
        worklist.clear();
        if packets.is_empty() || self.is_empty() {
            return;
        }
        if let Some(layout) = &self.tuple {
            for (v, p) in verdicts.iter_mut().zip(packets) {
                *v = tuple_first_match(layout, p);
            }
            return;
        }
        worklist.extend(0..packets.len() as u32);

        // Aggregate live-packet bits for the O(1) cube prune. Only
        // meaningful when every packet and cube share one width.
        let packets_uniform = {
            let w = packets[0].width();
            packets.iter().all(|p| p.width() == w).then_some(w)
        };
        let prune_width = match (self.uniform_width, packets_uniform) {
            (Some(cw), Some(pw)) if cw == pw => Some(cw),
            _ => None,
        };
        let (mut or_bits, mut and_bits) = aggregate(packets, worklist);
        let mut aggregated_at = worklist.len();

        for ci in 0..self.care.len() {
            if worklist.is_empty() {
                return; // early exit: every packet already matched
            }
            let care = self.care[ci];
            let value = self.value[ci];
            if let Some(w) = prune_width {
                if self.widths[ci] != w {
                    continue;
                }
                // A cared-1 bit that is 0 in every live packet, or a
                // cared-0 bit that is 1 in every live packet, rules the
                // cube out for the whole batch.
                if value & care & !or_bits != 0 {
                    continue;
                }
                if !value & care & and_bits != 0 {
                    continue;
                }
            }
            let cw = self.widths[ci];
            worklist.retain(|&i| {
                let p = &packets[i as usize];
                let hit = p.width() == cw && (p.bits() ^ value) & care == 0;
                if hit {
                    verdicts[i as usize] = Some(ci);
                }
                !hit
            });
            // Stale aggregates stay sound (removals only shrink the OR
            // and grow the AND, so a stale prune fires less often, never
            // wrongly), so refresh only once the live set has halved —
            // the total refresh cost is then O(batch), not O(cubes ×
            // batch).
            if worklist.len() * 2 <= aggregated_at {
                (or_bits, and_bits) = aggregate(packets, worklist);
                aggregated_at = worklist.len();
            }
        }
    }
}

/// OR / AND of the bits of the packets named by `worklist`.
fn aggregate(packets: &[Packet], worklist: &[u32]) -> (u128, u128) {
    let mut or_bits = 0u128;
    let mut and_bits = u128::MAX;
    for &i in worklist {
        let b = packets[i as usize].bits();
        or_bits |= b;
        and_bits &= b;
    }
    (or_bits, and_bits)
}

/// Classifies `packets` against `cubes` in priority order, returning for
/// each packet the index of its highest-priority matching cube.
///
/// One-shot convenience over [`BatchClassifier`]; build the classifier
/// once when the same cube list serves many batches.
pub fn classify_batch(packets: &[Packet], cubes: &[Ternary]) -> Vec<Option<usize>> {
    BatchClassifier::new(cubes).classify(packets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    /// The scalar oracle: priority scan with `Ternary::matches`.
    fn scalar(packets: &[Packet], cubes: &[Ternary]) -> Vec<Option<usize>> {
        packets
            .iter()
            .map(|p| cubes.iter().position(|c| c.matches(p)))
            .collect()
    }

    #[test]
    fn empty_batch_and_empty_cubes() {
        assert!(classify_batch(&[], &[t("1*")]).is_empty());
        let p = [Packet::from_bits(0b10, 2)];
        assert_eq!(classify_batch(&p, &[]), vec![None]);
        assert!(BatchClassifier::new(&[]).is_empty());
    }

    #[test]
    fn doc_example_priority_order() {
        let cubes = [t("10**"), t("1***")];
        let packets = [
            Packet::from_bits(0b1011, 4),
            Packet::from_bits(0b1111, 4),
            Packet::from_bits(0b0000, 4),
        ];
        assert_eq!(
            classify_batch(&packets, &cubes),
            vec![Some(0), Some(1), None]
        );
    }

    #[test]
    fn all_wildcard_cube_matches_everything_first() {
        let cubes = [t("****"), t("1***")];
        let packets: Vec<Packet> = (0..16).map(|b| Packet::from_bits(b, 4)).collect();
        let got = classify_batch(&packets, &cubes);
        assert!(got.iter().all(|v| *v == Some(0)));
    }

    #[test]
    fn width_mismatch_is_a_miss() {
        let cubes = [t("1*")];
        let packets = [Packet::from_bits(0b101, 3), Packet::from_bits(0b10, 2)];
        assert_eq!(classify_batch(&packets, &cubes), vec![None, Some(0)]);
    }

    #[test]
    fn exhaustive_width8_equivalence_with_scalar() {
        // Every 8-bit packet against a structured cube list: the batch
        // kernel must agree with the scalar priority scan everywhere.
        let cubes = [
            t("1010****"),
            t("10******"),
            t("*****111"),
            t("0*0*0*0*"),
            t("********"),
        ];
        let packets: Vec<Packet> = (0..256).map(|b| Packet::from_bits(b, 8)).collect();
        assert_eq!(classify_batch(&packets, &cubes), scalar(&packets, &cubes));
    }

    #[test]
    fn exhaustive_width8_no_default_cube() {
        // Without a trailing all-wildcard cube some packets miss; the
        // kernel must report None exactly where the scalar scan does.
        let cubes = [t("11******"), t("**00****"), t("*******1")];
        let packets: Vec<Packet> = (0..256).map(|b| Packet::from_bits(b, 8)).collect();
        let got = classify_batch(&packets, &cubes);
        assert_eq!(got, scalar(&packets, &cubes));
        assert!(got.iter().any(|v| v.is_none()));
    }

    #[test]
    fn first_match_agrees_with_batch() {
        let cubes = [t("1010****"), t("10******"), t("*****111")];
        let classifier = BatchClassifier::new(&cubes);
        for b in 0..256u128 {
            let p = Packet::from_bits(b, 8);
            assert_eq!(classifier.first_match(&p), classify_batch(&[p], &cubes)[0]);
        }
    }

    #[test]
    fn classify_into_reuses_buffers() {
        let classifier = BatchClassifier::new(&[t("1***"), t("****")]);
        let mut verdicts = Vec::new();
        let mut worklist = Vec::new();
        for round in 0..3 {
            let packets: Vec<Packet> = (0..8).map(|b| Packet::from_bits(b + round, 4)).collect();
            classifier.classify_into(&packets, &mut verdicts, &mut worklist);
            let want: Vec<Option<usize>> = packets
                .iter()
                .map(|p| [t("1***"), t("****")].iter().position(|c| c.matches(p)))
                .collect();
            assert_eq!(verdicts, want);
        }
    }

    /// 32 prefix-style cubes over 4 distinct masks: enough sharing to
    /// activate the tuple-space layout, which must agree with the scalar
    /// scan on every 8-bit packet — including shadowed duplicates (same
    /// mask and value at a lower priority must never win).
    #[test]
    fn grouped_layout_exhaustive_width8_equivalence() {
        let mut cubes = Vec::new();
        for b in 0..8u128 {
            cubes.push(Ternary::new(8, 0b1110_0000, b << 5)); // /3 prefixes
            cubes.push(Ternary::new(8, 0b1111_1100, b << 2)); // /6 prefixes
        }
        for b in 0..4u128 {
            cubes.push(Ternary::new(8, 0b1100_0000, b << 6)); // /2 prefixes
        }
        cubes.push(Ternary::new(8, 0, 0)); // all-wildcard
        cubes.push(Ternary::new(8, 0b1110_0000, 0)); // shadows cube 0
        cubes.extend((0..2).map(|b| Ternary::new(8, 0b1100_0000, b << 6))); // shadowed /2s
        let classifier = BatchClassifier::new(&cubes);
        assert!(
            classifier.is_grouped(),
            "shared prefix masks must activate the tuple-space layout"
        );
        let packets: Vec<Packet> = (0..256).map(|b| Packet::from_bits(b, 8)).collect();
        assert_eq!(classifier.classify(&packets), scalar(&packets, &cubes));
        for p in &packets {
            assert_eq!(
                classifier.first_match(p),
                cubes.iter().position(|c| c.matches(p))
            );
        }
    }

    #[test]
    fn grouped_layout_width_mismatch_is_a_miss() {
        let cubes: Vec<Ternary> = (0..16)
            .map(|b| Ternary::new(8, 0b1111_0000, b << 4))
            .collect();
        let classifier = BatchClassifier::new(&cubes);
        assert!(classifier.is_grouped());
        let packets = [Packet::from_bits(0b101, 3), Packet::from_bits(0, 8)];
        assert_eq!(classifier.classify(&packets), vec![None, Some(0)]);
    }

    #[test]
    fn distinct_masks_keep_the_linear_layout() {
        // 16+ cubes but every mask unique: grouping would degenerate to
        // one entry per group, so the classifier must stay linear.
        let cubes: Vec<Ternary> = (0..20)
            .map(|i| Ternary::new(32, 1u128 << i, 1u128 << i))
            .collect();
        assert!(!BatchClassifier::new(&cubes).is_grouped());
        assert!(!BatchClassifier::new(&cubes[..4]).is_grouped());
    }

    /// The seeded property test below draws fully random masks, which
    /// almost never share — so it exercises the linear path. This twin
    /// draws masks from a small prefix pool, exercising the grouped path
    /// across the same seeds.
    #[test]
    fn seeded_property_equivalence_grouped_32_seeds() {
        let mut state: u64 = 0x243f_6a88_85a3_08d3;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seed in 0..32u64 {
            let width = 8 + ((next() ^ seed) % 5) as u32; // 8..=12
            let mask_pool: Vec<u128> = (0..3)
                .map(|_| {
                    let len = next() % (width as u64 + 1);
                    if len == 0 {
                        0
                    } else {
                        let ones = (1u128 << len) - 1;
                        ones << (width as u64 - len)
                    }
                })
                .collect();
            let n_cubes = TUPLE_MIN_CUBES + (next() % 17) as usize;
            let full = if width == 128 {
                u128::MAX
            } else {
                (1u128 << width) - 1
            };
            let cubes: Vec<Ternary> = (0..n_cubes)
                .map(|_| {
                    let care = mask_pool[(next() as usize) % mask_pool.len()];
                    Ternary::new(width, care, (next() as u128) & full)
                })
                .collect();
            let packets: Vec<Packet> = (0..(next() % 33))
                .map(|_| Packet::from_bits((next() as u128) & full, width))
                .collect();
            let classifier = BatchClassifier::new(&cubes);
            assert!(
                classifier.is_grouped(),
                "seed {seed}: pooled masks must activate grouping"
            );
            assert_eq!(
                classifier.classify(&packets),
                scalar(&packets, &cubes),
                "seed {seed} diverged (width {width}, {} cubes, {} packets)",
                cubes.len(),
                packets.len()
            );
        }
    }

    #[test]
    fn seeded_property_equivalence_32_seeds() {
        // Deterministic xorshift-style generator: random cube lists and
        // packet batches across 32 seeds, compared against the scalar
        // oracle. Covers empty batches, all-wildcard cubes, and priority
        // shadowing (duplicated/overlapping cubes).
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seed in 0..32u64 {
            let width = 1 + ((next() ^ seed) % 12) as u32;
            let n_cubes = (next() % 9) as usize; // may be 0
            let mut cubes = Vec::with_capacity(n_cubes);
            for _ in 0..n_cubes {
                let mask = if width == 128 {
                    u128::MAX
                } else {
                    (1u128 << width) - 1
                };
                let care = if next() % 5 == 0 {
                    0 // all-wildcard cube
                } else {
                    (next() as u128) & mask
                };
                let value = (next() as u128) & mask;
                cubes.push(Ternary::new(width, care, value));
            }
            // Priority shadowing: sometimes duplicate an earlier cube at
            // a lower priority — it must never win a verdict.
            if !cubes.is_empty() && next() % 2 == 0 {
                let dup = cubes[(next() as usize) % cubes.len()];
                cubes.push(dup);
            }
            let n_packets = (next() % 33) as usize; // may be 0
            let mask = if width == 128 {
                u128::MAX
            } else {
                (1u128 << width) - 1
            };
            let packets: Vec<Packet> = (0..n_packets)
                .map(|_| Packet::from_bits((next() as u128) & mask, width))
                .collect();
            assert_eq!(
                classify_batch(&packets, &cubes),
                scalar(&packets, &cubes),
                "seed {seed} diverged (width {width}, {} cubes, {} packets)",
                cubes.len(),
                packets.len()
            );
        }
    }
}

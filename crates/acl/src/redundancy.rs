//! Exact (all-match) redundancy removal for ACL policies.
//!
//! The paper's flow chart (Fig. 4) starts with an optional pre-pass that
//! removes redundant rules from each ingress policy, citing SAT- and
//! decision-tree-based firewall optimizers (refs [7–9]). This module
//! implements an exact variant using the ternary cube algebra of
//! [`CubeList`]: each removal is validated to preserve first-match
//! semantics, so the output policy is equivalent to the input on every
//! packet.
//!
//! Two classes of redundancy are eliminated:
//!
//! * **Shadowed (upward-redundant) rules** — the rule's match field is fully
//!   covered by higher-priority rules, so it can never be the first match.
//! * **Masked (downward-redundant) rules** — every packet for which the rule
//!   is the first match would receive the same action from the rules below
//!   it (or the default PERMIT), so removing it changes nothing.
//!
//! The cube algebra here is the hottest allocation site in an epoch, so
//! the pass is arena-backed: one `region`/`rest` pair of [`CubeList`]s is
//! re-seeded per rule (keeping its backing storage) and all sharp-split
//! scratch comes from a [`CubeArena`]. Use [`remove_redundant_with`] to
//! supply your own arena and read back its [`crate::ArenaStats`].

use crate::{Action, CubeArena, CubeList, Policy, Rule, RuleId};

/// Why a rule was removed by [`remove_redundant`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RedundancyKind {
    /// Fully covered by higher-priority rules; never the first match.
    Shadowed,
    /// First-match region falls through to the same decision below.
    Masked,
}

/// Outcome of redundancy removal on one policy.
#[derive(Clone, Debug)]
pub struct RemovalReport {
    /// The equivalent policy with redundant rules removed.
    pub policy: Policy,
    /// `(original rule id, rule, why)` for each removed rule, in descending
    /// priority order of the original policy.
    pub removed: Vec<(RuleId, Rule, RedundancyKind)>,
}

impl RemovalReport {
    /// Number of rules removed.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }
}

/// Removes all redundant rules from `policy`, returning an equivalent,
/// typically smaller policy together with the list of removed rules.
///
/// The check is exact: a rule is removed only if the policy without it
/// accepts/drops exactly the same packets. Passes run to a fixpoint (one
/// removal can expose another — e.g. a shadowed DROP whose removal makes
/// the PERMIT above it fall through to the default), so the result
/// contains no redundant rule at all. Each pass runs in `O(n² · cubes)`
/// where fragmentation of the cube lists bounds `cubes`.
///
/// # Example
///
/// ```
/// use flowplace_acl::{redundancy, Action, Policy, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let policy = Policy::from_ordered(vec![
///     (Ternary::parse("1***")?, Action::Drop),
///     (Ternary::parse("10**")?, Action::Drop), // shadowed by the first
/// ])?;
/// let report = redundancy::remove_redundant(&policy);
/// assert_eq!(report.policy.len(), 1);
/// assert_eq!(report.removed_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn remove_redundant(policy: &Policy) -> RemovalReport {
    let mut arena = CubeArena::new();
    remove_redundant_with(policy, &mut arena)
}

/// [`remove_redundant`] drawing all cube-algebra scratch from `arena`.
///
/// The arena's [`crate::ArenaStats`] afterwards describe exactly this
/// removal's allocation behaviour — the hook used by the observability
/// gauges and the committed micro benchmark.
pub fn remove_redundant_with(policy: &Policy, arena: &mut CubeArena) -> RemovalReport {
    let mut current = policy.clone();
    let mut all_removed: Vec<(RuleId, Rule, RedundancyKind)> = Vec::new();
    // One region/rest pair re-seeded per rule across every pass, so the
    // fixpoint loop reuses the same cube storage throughout.
    let mut region = CubeList::new();
    let mut rest = CubeList::new();
    loop {
        let pass = remove_redundant_pass(&current, arena, &mut region, &mut rest);
        let done = pass.removed.is_empty();
        // Report removed rules by their ids in the *original* policy.
        for (_, rule, kind) in pass.removed {
            let original_id = policy
                .iter()
                .find(|(id, r)| **r == rule && !all_removed.iter().any(|(rid, _, _)| rid == id))
                .map(|(id, _)| id)
                .unwrap_or(RuleId(usize::MAX));
            all_removed.push((original_id, rule, kind));
        }
        current = pass.policy;
        if done {
            break;
        }
    }
    all_removed.sort_by_key(|(id, _, _)| *id);
    RemovalReport {
        policy: current,
        removed: all_removed,
    }
}

/// One top-down removal pass (see [`remove_redundant`]).
fn remove_redundant_pass(
    policy: &Policy,
    arena: &mut CubeArena,
    region: &mut CubeList,
    rest: &mut CubeList,
) -> RemovalReport {
    let mut removed = Vec::new();
    // Indices (into the original descending-priority order) of rules kept.
    let mut kept: Vec<usize> = Vec::with_capacity(policy.len());
    let rules = policy.rules();

    for i in 0..rules.len() {
        let rule = &rules[i];
        // Effective region: packets for which this rule is the first match
        // among the rules kept above it.
        region.reset_to_cube(*rule.match_field());
        for &k in &kept {
            region.subtract_in(rules[k].match_field(), arena);
            if region.is_empty() {
                break;
            }
        }
        if region.is_empty() {
            removed.push((RuleId(i), *rule, RedundancyKind::Shadowed));
            continue;
        }
        if falls_through_to_same_action(region, rule.action(), &rules[i + 1..], rest, arena) {
            removed.push((RuleId(i), *rule, RedundancyKind::Masked));
            continue;
        }
        kept.push(i);
    }

    let kept_rules: Vec<Rule> = kept.into_iter().map(|i| rules[i]).collect();
    let policy = Policy::from_rules(kept_rules).expect("kept subset of a valid policy is valid");
    RemovalReport { policy, removed }
}

/// True if every packet in `region` receives `action` from the first
/// matching rule in `below` (or the default PERMIT when none matches).
///
/// `rest` is caller-owned working storage (overwritten, contents
/// unspecified on return) so repeated calls reuse one cube buffer.
fn falls_through_to_same_action(
    region: &CubeList,
    action: Action,
    below: &[Rule],
    rest: &mut CubeList,
    arena: &mut CubeArena,
) -> bool {
    rest.clone_from(region);
    for lower in below {
        if rest.is_empty() {
            return true;
        }
        // An allocation-free emptiness probe — the old code materialised
        // the intersection just to test it.
        if !rest.is_disjoint_from(lower.match_field()) {
            if lower.action() != action {
                return false;
            }
            rest.subtract_in(lower.match_field(), arena);
        }
    }
    // Whatever remains falls through to the default PERMIT.
    rest.is_empty() || action == Action::Permit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ternary;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    fn pol(specs: Vec<(&str, Action)>) -> Policy {
        Policy::from_ordered(specs.into_iter().map(|(m, a)| (t(m), a)).collect()).unwrap()
    }

    #[test]
    fn shadowed_rule_removed() {
        let p = pol(vec![("1***", Action::Drop), ("10**", Action::Drop)]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 1);
        assert_eq!(r.removed[0].2, RedundancyKind::Shadowed);
        assert!(p.equivalent_by_enumeration(&r.policy));
    }

    #[test]
    fn masked_across_non_overlapping_middle_rule() {
        // 0*** DROP is masked by **** DROP below: the PERMIT between them
        // never intersects 0***, so the fall-through decision is unchanged.
        let p = pol(vec![
            ("0***", Action::Drop),
            ("1***", Action::Permit),
            ("****", Action::Drop),
        ]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 2);
        assert_eq!(r.removed[0].2, RedundancyKind::Masked);
        assert_eq!(r.removed[0].0, RuleId(0));
        assert!(p.equivalent_by_enumeration(&r.policy));
    }

    #[test]
    fn union_shadowing_detected() {
        // 0*** ∪ 1*** shadow ****, even though neither alone covers it.
        let p = pol(vec![
            ("0***", Action::Drop),
            ("1***", Action::Drop),
            ("****", Action::Permit),
        ]);
        let r = remove_redundant(&p);
        assert!(p.equivalent_by_enumeration(&r.policy));
        assert!(r
            .removed
            .iter()
            .any(|(_, _, k)| *k == RedundancyKind::Shadowed));
    }

    #[test]
    fn masked_rule_removed() {
        // The higher DROP's region is re-dropped by the wider DROP below.
        let p = pol(vec![("10**", Action::Drop), ("1***", Action::Drop)]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 1);
        assert_eq!(r.removed[0].2, RedundancyKind::Masked);
        assert_eq!(r.policy.rules()[0].match_field(), &t("1***"));
        assert!(p.equivalent_by_enumeration(&r.policy));
    }

    #[test]
    fn permit_falling_to_default_removed() {
        // A PERMIT whose region matches nothing below falls to default
        // PERMIT: redundant.
        let p = pol(vec![("11**", Action::Permit), ("00**", Action::Drop)]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 1);
        assert_eq!(r.removed[0].2, RedundancyKind::Masked);
        assert!(p.equivalent_by_enumeration(&r.policy));
    }

    #[test]
    fn drop_falling_to_default_kept() {
        let p = pol(vec![("11**", Action::Drop)]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 1);
        assert!(r.removed.is_empty());
    }

    #[test]
    fn partial_overlap_not_redundant() {
        // The PERMIT shields part of the DROP below; neither is redundant.
        let p = pol(vec![("11**", Action::Permit), ("1***", Action::Drop)]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 2);
    }

    #[test]
    fn mixed_action_below_blocks_masking() {
        // DROP's region partially falls into a PERMIT below: must keep the
        // DROP. The shadowed inner DROP and the default-equivalent trailing
        // PERMIT both go.
        let p = pol(vec![
            ("1***", Action::Drop),
            ("1*1*", Action::Drop),
            ("****", Action::Permit),
        ]);
        let r = remove_redundant(&p);
        assert_eq!(r.policy.len(), 1);
        assert_eq!(r.policy.rules()[0].match_field(), &t("1***"));
        assert!(p.equivalent_by_enumeration(&r.policy));
    }

    #[test]
    fn chain_of_removals_stays_equivalent() {
        let p = pol(vec![
            ("111*", Action::Drop),
            ("11**", Action::Drop),
            ("1***", Action::Drop),
            ("0***", Action::Permit),
            ("00**", Action::Permit),
        ]);
        let r = remove_redundant(&p);
        assert!(p.equivalent_by_enumeration(&r.policy));
        assert_eq!(r.policy.len(), 1); // only 1*** DROP survives
    }

    #[test]
    fn empty_policy_untouched() {
        let p = Policy::from_rules(vec![]).unwrap();
        let r = remove_redundant(&p);
        assert!(r.policy.is_empty());
        assert!(r.removed.is_empty());
    }

    #[test]
    fn explicit_arena_matches_default_and_reports_stats() {
        let p = pol(vec![
            ("111*", Action::Drop),
            ("11**", Action::Drop),
            ("1***", Action::Drop),
            ("0***", Action::Permit),
            ("00**", Action::Permit),
        ]);
        let mut arena = CubeArena::new();
        let with = remove_redundant_with(&p, &mut arena);
        let plain = remove_redundant(&p);
        assert_eq!(with.policy.rules(), plain.policy.rules());
        assert_eq!(with.removed.len(), plain.removed.len());
        let stats = arena.stats();
        assert!(stats.allocations + stats.reuse_hits > 0);
        // The pool must be bounded: a handful of buffers serve the whole
        // fixpoint, everything else is reuse.
        assert!(
            stats.allocations <= 4,
            "redundancy pass over-allocated: {stats:?}"
        );
    }
}

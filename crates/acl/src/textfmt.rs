//! A plain-text policy format for files and CLIs.
//!
//! One rule per line, first-match order (the first line has the highest
//! priority), mirroring how firewall configurations are usually written:
//!
//! ```text
//! # tenant 7 ingress policy
//! permit 1100****
//! drop   11******
//! drop   0*******   @ 40     # explicit priority (optional)
//! ```
//!
//! `#` starts a comment; blank lines are ignored; an optional `@ N`
//! suffix pins an explicit priority (lines without one are numbered
//! downward from the top, leaving room below the highest explicit
//! priority).

use std::fmt;

use crate::{Action, ParseTernaryError, Policy, PolicyError, Rule, Ternary};

/// Error from [`parse_policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePolicyError {
    /// A line did not match `<action> <ternary> [@ priority]`.
    BadLine {
        /// 1-indexed line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The assembled rules do not form a valid policy.
    Policy(PolicyError),
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePolicyError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParsePolicyError::Policy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParsePolicyError {}

impl From<PolicyError> for ParsePolicyError {
    fn from(e: PolicyError) -> Self {
        ParsePolicyError::Policy(e)
    }
}

/// Parses the text format described in the module docs.
///
/// # Errors
///
/// [`ParsePolicyError::BadLine`] for malformed lines;
/// [`ParsePolicyError::Policy`] if priorities collide or widths differ.
pub fn parse_policy(text: &str) -> Result<Policy, ParsePolicyError> {
    struct Parsed {
        line: usize,
        match_field: Ternary,
        action: Action,
        explicit: Option<u32>,
    }
    let mut parsed: Vec<Parsed> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let action = match parts.next() {
            Some(a) if a.eq_ignore_ascii_case("permit") => Action::Permit,
            Some(a) if a.eq_ignore_ascii_case("drop") => Action::Drop,
            Some(other) => {
                return Err(ParsePolicyError::BadLine {
                    line: line_no,
                    reason: format!("unknown action {other:?} (expected permit/drop)"),
                })
            }
            None => unreachable!("nonempty line has a first token"),
        };
        let Some(pattern) = parts.next() else {
            return Err(ParsePolicyError::BadLine {
                line: line_no,
                reason: "missing match pattern".into(),
            });
        };
        let match_field =
            Ternary::parse(pattern).map_err(|e: ParseTernaryError| ParsePolicyError::BadLine {
                line: line_no,
                reason: e.to_string(),
            })?;
        let explicit = match (parts.next(), parts.next()) {
            (None, _) => None,
            (Some("@"), Some(p)) => {
                Some(p.parse::<u32>().map_err(|_| ParsePolicyError::BadLine {
                    line: line_no,
                    reason: format!("bad priority {p:?}"),
                })?)
            }
            (Some(tok), _) if tok.starts_with('@') => Some(tok[1..].parse::<u32>().map_err(
                |_| ParsePolicyError::BadLine {
                    line: line_no,
                    reason: format!("bad priority {tok:?}"),
                },
            )?),
            (Some(extra), _) => {
                return Err(ParsePolicyError::BadLine {
                    line: line_no,
                    reason: format!("unexpected trailing token {extra:?}"),
                })
            }
        };
        parsed.push(Parsed {
            line: line_no,
            match_field,
            action,
            explicit,
        });
    }

    // Implicit priorities: descending from max(explicit, count) + count,
    // so top lines outrank lower lines and never collide with explicit
    // values below them... simplest deterministic scheme: implicit lines
    // get (n - index) + max_explicit, explicit lines keep theirs.
    let n = parsed.len() as u32;
    let max_explicit = parsed.iter().filter_map(|p| p.explicit).max().unwrap_or(0);
    let rules: Vec<Rule> = parsed
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let priority = p.explicit.unwrap_or(max_explicit + n - i as u32);
            Rule::new(p.match_field, p.action, priority)
        })
        .collect();
    Policy::from_rules(rules).map_err(|e| {
        // Attribute duplicate-priority errors to a line when possible.
        if let PolicyError::DuplicatePriority(prio) = e {
            if let Some(p) = parsed.iter().find(|p| p.explicit == Some(prio)) {
                return ParsePolicyError::BadLine {
                    line: p.line,
                    reason: format!("priority {prio} collides with another rule"),
                };
            }
        }
        ParsePolicyError::Policy(e)
    })
}

/// Renders a policy in the text format (highest priority first, explicit
/// `@ priority` on every line so the round trip is exact).
pub fn format_policy(policy: &Policy) -> String {
    let mut out = String::new();
    for r in policy.rules() {
        let action = match r.action() {
            Action::Permit => "permit",
            Action::Drop => "drop  ",
        };
        out.push_str(&format!(
            "{action} {} @ {}\n",
            r.match_field(),
            r.priority()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_policy() {
        let p = parse_policy(
            "# header comment\n\
             permit 1100\n\
             drop   11**   # inline comment\n\
             \n\
             DROP   0***\n",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.rules()[0].match_field(), &Ternary::parse("1100").unwrap());
        assert_eq!(p.rules()[0].action(), Action::Permit);
        assert_eq!(p.rules()[2].action(), Action::Drop);
        // Order preserved: first line outranks the rest.
        assert!(p.rules()[0].priority() > p.rules()[1].priority());
    }

    #[test]
    fn explicit_priorities_honored() {
        let p = parse_policy("drop 1* @ 5\npermit 11 @9\n").unwrap();
        // permit @9 outranks drop @5 despite line order.
        assert_eq!(p.rules()[0].action(), Action::Permit);
        assert_eq!(p.rules()[0].priority(), 9);
        assert_eq!(p.rules()[1].priority(), 5);
    }

    #[test]
    fn bad_lines_are_located() {
        let e = parse_policy("permit 11\nreject 00\n").unwrap_err();
        assert!(
            matches!(e, ParsePolicyError::BadLine { line: 2, .. }),
            "{e}"
        );
        let e = parse_policy("permit\n").unwrap_err();
        assert!(e.to_string().contains("missing match pattern"));
        let e = parse_policy("permit 1x\n").unwrap_err();
        assert!(e.to_string().contains("invalid ternary"));
        let e = parse_policy("permit 11 @ huge\n").unwrap_err();
        assert!(e.to_string().contains("bad priority"));
        let e = parse_policy("permit 11 stray\n").unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn duplicate_explicit_priority_reported_with_line() {
        let e = parse_policy("drop 1* @ 5\ndrop 0* @ 5\n").unwrap_err();
        assert!(e.to_string().contains("collides"), "{e}");
    }

    #[test]
    fn round_trip_exact() {
        let original = parse_policy("permit 1100 @ 7\ndrop 11** @ 3\ndrop 0*** @ 1\n").unwrap();
        let text = format_policy(&original);
        let reparsed = parse_policy(&text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn empty_input_is_empty_policy() {
        let p = parse_policy("\n# nothing\n").unwrap();
        assert!(p.is_empty());
        assert_eq!(format_policy(&p), "");
    }
}

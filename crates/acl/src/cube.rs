//! Unions of ternary cubes with exact set operations.

use std::cell::RefCell;
use std::fmt;

use crate::{CubeArena, Packet, Ternary};

thread_local! {
    /// Pool behind the convenience methods ([`CubeList::subtract`] and
    /// friends), so every caller amortises scratch allocations without
    /// threading an arena through its signature.
    static THREAD_ARENA: RefCell<CubeArena> = RefCell::new(CubeArena::new());
}

/// Runs `f` with this thread's shared [`CubeArena`].
///
/// The convenience methods on [`CubeList`] borrow the arena for the
/// duration of one operation, so `f` must not re-enter them — call the
/// explicit `*_in` variants on the borrowed arena instead.
pub fn with_thread_arena<R>(f: impl FnOnce(&mut CubeArena) -> R) -> R {
    THREAD_ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// Snapshot of the thread-local arena's counters, for observability
/// gauges and the micro benchmark.
pub fn thread_arena_stats() -> crate::ArenaStats {
    with_thread_arena(|a| a.stats())
}

/// A set of packets represented as a union of pairwise-disjoint ternary
/// cubes, supporting exact difference, intersection, and coverage queries.
///
/// This is the multi-dimensional packet-space machinery referenced by the
/// paper's redundancy-removal pre-pass (refs [7–9]); it powers the exact
/// all-match redundancy analysis in [`crate::redundancy`].
///
/// The mutating operations need scratch buffers for the TCAM "sharp"
/// split. The plain methods ([`subtract`](Self::subtract),
/// [`insert`](Self::insert), …) borrow a thread-local [`CubeArena`] so
/// steady-state loops allocate ~zero; the `*_in` variants take an
/// explicit arena for isolated accounting.
///
/// # Example
///
/// ```
/// use flowplace_acl::{CubeList, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut space = CubeList::from_cube(Ternary::parse("1***")?);
/// space.subtract(&Ternary::parse("10**")?);
/// assert!(space.contains_cube(&Ternary::parse("11**")?));
/// assert!(space.is_disjoint_from(&Ternary::parse("10**")?));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CubeList {
    cubes: Vec<Ternary>,
}

impl CubeList {
    /// The empty set.
    pub fn new() -> Self {
        CubeList { cubes: Vec::new() }
    }

    /// A set holding exactly one cube.
    pub fn from_cube(cube: Ternary) -> Self {
        CubeList { cubes: vec![cube] }
    }

    /// Resets the set to exactly one cube, keeping the backing storage.
    /// The allocation-free way to restart a loop that re-seeds the same
    /// `CubeList` per iteration (see [`crate::redundancy`]).
    pub fn reset_to_cube(&mut self, cube: Ternary) {
        self.cubes.clear();
        self.cubes.push(cube);
    }

    /// The cubes of this set. Invariant: pairwise disjoint.
    pub fn cubes(&self) -> &[Ternary] {
        &self.cubes
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total number of packets in the set (cubes are disjoint), saturating.
    pub fn cardinality(&self) -> u128 {
        self.cubes
            .iter()
            .fold(0u128, |acc, c| acc.saturating_add(c.cardinality()))
    }

    /// True if `packet` is in the set.
    pub fn contains_packet(&self, packet: &Packet) -> bool {
        self.cubes.iter().any(|c| c.matches(packet))
    }

    /// Removes every packet of `cube` from the set (the TCAM "sharp"
    /// operation, applied cube-wise). Scratch comes from the thread-local
    /// arena.
    pub fn subtract(&mut self, cube: &Ternary) {
        with_thread_arena(|arena| self.subtract_in(cube, arena));
    }

    /// [`subtract`](Self::subtract) drawing scratch from an explicit
    /// arena.
    pub fn subtract_in(&mut self, cube: &Ternary, arena: &mut CubeArena) {
        let mut scratch = arena.take();
        self.subtract_with(cube, &mut scratch);
        arena.put(scratch);
    }

    /// [`subtract`](Self::subtract) writing through a caller-owned scratch
    /// buffer, so a loop over many cubes reuses one allocation. After the
    /// call `scratch` holds the previous cube list's (cleared) storage.
    fn subtract_with(&mut self, cube: &Ternary, scratch: &mut Vec<Ternary>) {
        scratch.clear();
        for c in self.cubes.drain(..) {
            sharp_into(&c, cube, scratch);
        }
        std::mem::swap(&mut self.cubes, scratch);
    }

    /// Removes every packet of `other` from the set. Scratch comes from
    /// the thread-local arena.
    pub fn subtract_all(&mut self, other: &CubeList) {
        with_thread_arena(|arena| self.subtract_all_in(other, arena));
    }

    /// [`subtract_all`](Self::subtract_all) drawing scratch from an
    /// explicit arena.
    pub fn subtract_all_in(&mut self, other: &CubeList, arena: &mut CubeArena) {
        // One scratch buffer swapped back and forth across the loop —
        // this runs hot under candidate rebuilds, and a fresh Vec per
        // subtracted cube showed up as allocator churn.
        let mut scratch = arena.take();
        for cube in &other.cubes {
            self.subtract_with(cube, &mut scratch);
            if self.cubes.is_empty() {
                break;
            }
        }
        arena.put(scratch);
    }

    /// The subset of this set that intersects `cube`, as a new set.
    ///
    /// Allocates the result; when only emptiness matters, use
    /// [`is_disjoint_from`](Self::is_disjoint_from) instead — it probes
    /// without allocating.
    pub fn intersection_with_cube(&self, cube: &Ternary) -> CubeList {
        CubeList {
            cubes: self
                .cubes
                .iter()
                .filter_map(|c| c.intersection(cube))
                .collect(),
        }
    }

    /// True if no packet of `cube` is in the set.
    pub fn is_disjoint_from(&self, cube: &Ternary) -> bool {
        self.cubes.iter().all(|c| !c.intersects(cube))
    }

    /// True if every packet of `cube` is in the set. Scratch comes from
    /// the thread-local arena.
    pub fn contains_cube(&self, cube: &Ternary) -> bool {
        with_thread_arena(|arena| self.contains_cube_in(cube, arena))
    }

    /// [`contains_cube`](Self::contains_cube) drawing scratch from an
    /// explicit arena.
    pub fn contains_cube_in(&self, cube: &Ternary, arena: &mut CubeArena) -> bool {
        // cube ⊆ self  ⇔  cube \ self = ∅. Ping-pong between two pooled
        // buffers instead of re-taking the remainder vector per fragment,
        // which reallocated on every iteration.
        let mut cur = arena.take();
        let mut next = arena.take();
        cur.push(*cube);
        for c in &self.cubes {
            next.clear();
            for r in cur.drain(..) {
                sharp_into(&r, c, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
            if cur.is_empty() {
                break;
            }
        }
        let contained = cur.is_empty();
        arena.put(cur);
        arena.put(next);
        contained
    }

    /// Adds `cube` to the set, keeping cubes disjoint by inserting only the
    /// part of `cube` not already covered. Scratch comes from the
    /// thread-local arena.
    pub fn insert(&mut self, cube: &Ternary) {
        with_thread_arena(|arena| self.insert_in(cube, arena));
    }

    /// [`insert`](Self::insert) drawing scratch from an explicit arena.
    pub fn insert_in(&mut self, cube: &Ternary, arena: &mut CubeArena) {
        let mut fresh = arena.take();
        let mut scratch = arena.take();
        fresh.push(*cube);
        for existing in &self.cubes {
            scratch.clear();
            for f in fresh.drain(..) {
                sharp_into(&f, existing, &mut scratch);
            }
            std::mem::swap(&mut fresh, &mut scratch);
            if fresh.is_empty() {
                break;
            }
        }
        self.cubes.append(&mut fresh);
        arena.put(fresh);
        arena.put(scratch);
    }
}

impl fmt::Display for CubeList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Ternary> for CubeList {
    fn from_iter<I: IntoIterator<Item = Ternary>>(iter: I) -> Self {
        let mut list = CubeList::new();
        list.extend(iter);
        list
    }
}

impl Extend<Ternary> for CubeList {
    fn extend<I: IntoIterator<Item = Ternary>>(&mut self, iter: I) {
        with_thread_arena(|arena| {
            for c in iter {
                self.insert_in(&c, arena);
            }
        });
    }
}

/// Appends the disjoint cubes of `a \ b` to `out`.
///
/// Walks the bit positions where `b` cares but the running remainder of `a`
/// does not, splitting off the half that disagrees with `b` at each step.
fn sharp_into(a: &Ternary, b: &Ternary, out: &mut Vec<Ternary>) {
    debug_assert_eq!(a.width(), b.width());
    if !a.intersects(b) {
        out.push(*a);
        return;
    }
    let width = a.width();
    let mut cur = *a;
    for i in 0..width {
        let bit = 1u128 << i;
        if b.care() & bit != 0 && cur.care() & bit == 0 {
            // The half of `cur` that disagrees with `b` at position i is
            // disjoint from `b`; keep it and continue with the agreeing half.
            let keep = Ternary::new(width, cur.care() | bit, cur.value() | (!b.value() & bit));
            out.push(keep);
            cur = Ternary::new(width, cur.care() | bit, cur.value() | (b.value() & bit));
        }
    }
    // `cur` now agrees with `b` everywhere `b` cares: it is inside `b`.
    debug_assert!(b.subsumes(&cur));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    /// Brute-force membership over all packets of a small width.
    fn members(list: &CubeList, width: u32) -> Vec<u128> {
        (0..(1u128 << width))
            .filter(|&b| list.contains_packet(&Packet::from_bits(b, width)))
            .collect()
    }

    #[test]
    fn subtract_splits_correctly() {
        let mut s = CubeList::from_cube(t("****"));
        s.subtract(&t("10**"));
        let got = members(&s, 4);
        let want: Vec<u128> = (0..16).filter(|&b| (b >> 2) & 0b11 != 0b10).collect();
        assert_eq!(got, want);
        // Result cubes are pairwise disjoint.
        for (i, a) in s.cubes().iter().enumerate() {
            for b in &s.cubes()[i + 1..] {
                assert!(!a.intersects(b), "{a} intersects {b}");
            }
        }
    }

    #[test]
    fn subtract_disjoint_is_noop() {
        let mut s = CubeList::from_cube(t("0***"));
        s.subtract(&t("1***"));
        assert_eq!(s.cubes().len(), 1);
        assert_eq!(s.cardinality(), 8);
    }

    #[test]
    fn subtract_superset_empties() {
        let mut s = CubeList::from_cube(t("10*1"));
        s.subtract(&t("1***"));
        assert!(s.is_empty());
        assert_eq!(s.cardinality(), 0);
    }

    #[test]
    fn subtract_self_empties() {
        let mut s = CubeList::from_cube(t("1*0*"));
        s.subtract(&t("1*0*"));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_cube_across_fragments() {
        // {00**} ∪ {01**} covers 0***
        let mut s = CubeList::new();
        s.insert(&t("00**"));
        s.insert(&t("01**"));
        assert!(s.contains_cube(&t("0***")));
        assert!(!s.contains_cube(&t("****")));
        assert!(s.contains_cube(&t("01*1")));
    }

    #[test]
    fn insert_keeps_disjoint_and_counts() {
        let mut s = CubeList::new();
        s.insert(&t("1***"));
        s.insert(&t("1*1*")); // fully covered
        assert_eq!(s.cardinality(), 8);
        s.insert(&t("**11")); // partially covered
        assert_eq!(s.cardinality(), 8 + 2); // adds 0011 and 0111
        assert_eq!(members(&s, 4).len(), 10);
        for (i, a) in s.cubes().iter().enumerate() {
            for b in &s.cubes()[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn subtract_all_matches_sequential_subtract() {
        // The scratch-buffer loop must produce exactly what cube-by-cube
        // subtraction did, including cube order.
        let base = || {
            let mut s = CubeList::new();
            s.insert(&t("1***"));
            s.insert(&t("*1**"));
            s.insert(&t("**10"));
            s
        };
        let other: CubeList = vec![t("11**"), t("*011"), t("0*1*")].into_iter().collect();

        let mut batched = base();
        batched.subtract_all(&other);
        let mut sequential = base();
        for c in other.cubes() {
            sequential.subtract(c);
        }
        assert_eq!(batched, sequential);
        assert_eq!(members(&batched, 4), members(&sequential, 4));
    }

    #[test]
    fn subtract_all_empties_and_early_exits() {
        let mut s = CubeList::from_cube(t("10*1"));
        let all = CubeList::from_cube(t("****"));
        s.subtract_all(&all);
        assert!(s.is_empty());
        // A further subtraction on the empty set stays empty.
        s.subtract_all(&all);
        assert!(s.is_empty());
    }

    #[test]
    fn intersection_with_cube() {
        let mut s = CubeList::from_cube(t("1***"));
        s.subtract(&t("11**"));
        let i = s.intersection_with_cube(&t("***1"));
        let got = members(&i, 4);
        assert_eq!(got, vec![0b1001, 0b1011]);
    }

    #[test]
    fn from_iterator_collects_disjointly() {
        let s: CubeList = vec![t("1***"), t("*1**"), t("1***")].into_iter().collect();
        assert_eq!(members(&s, 4).len(), 12);
    }

    #[test]
    fn display_nonempty() {
        let s = CubeList::from_cube(t("1*"));
        assert_eq!(s.to_string(), "{1*}");
        assert_eq!(CubeList::new().to_string(), "{}");
    }

    #[test]
    fn explicit_arena_variants_match_thread_local_results() {
        let mut arena = CubeArena::new();
        let mut a = CubeList::from_cube(t("****"));
        let mut b = CubeList::from_cube(t("****"));
        a.subtract(&t("10**"));
        b.subtract_in(&t("10**"), &mut arena);
        assert_eq!(a, b);
        assert!(b.contains_cube_in(&t("11**"), &mut arena));
        let mut ia = CubeList::new();
        let mut ib = CubeList::new();
        for c in [t("1***"), t("**11")] {
            ia.insert(&c);
            ib.insert_in(&c, &mut arena);
        }
        assert_eq!(ia, ib);
    }

    #[test]
    fn explicit_arena_reuses_buffers_in_steady_state() {
        let mut arena = CubeArena::new();
        let mut s = CubeList::from_cube(t("****"));
        s.subtract_in(&t("10**"), &mut arena);
        let after_first = arena.stats().allocations;
        for _ in 0..100 {
            s.reset_to_cube(t("****"));
            s.subtract_in(&t("10**"), &mut arena);
            s.subtract_all_in(&CubeList::from_cube(t("0***")), &mut arena);
            assert!(s.contains_cube_in(&t("111*"), &mut arena));
        }
        // Steady state: the warm pool serves every further request.
        assert_eq!(
            arena.stats().allocations,
            after_first + 1, // contains_cube ping-pongs two buffers
            "steady-state loop created fresh buffers: {:?}",
            arena.stats()
        );
        assert!(arena.stats().reuse_hits >= 300);
    }

    #[test]
    fn reset_to_cube_keeps_capacity() {
        let mut s = CubeList::from_cube(t("****"));
        s.subtract(&t("1010"));
        let cap = s.cubes.capacity();
        assert!(cap >= 4);
        s.reset_to_cube(t("****"));
        assert_eq!(s.cubes().len(), 1);
        assert!(s.cubes.capacity() >= cap);
    }

    #[test]
    fn thread_arena_stats_accumulate() {
        let before = thread_arena_stats();
        let mut s = CubeList::from_cube(t("****"));
        s.subtract(&t("10**"));
        let after = thread_arena_stats();
        assert!(after.allocations + after.reuse_hits > before.allocations + before.reuse_hits);
    }
}

//! Ternary match algebra and prioritized ACL policies.
//!
//! This crate provides the packet-classification substrate used by the
//! `flowplace` rule-placement optimizer:
//!
//! * [`Ternary`] — a fixed-width ternary match field over `{0, 1, *}`,
//!   the matching language of OpenFlow TCAM rules.
//! * [`Packet`] — a concrete packet header (a fully specified bit vector).
//! * [`Rule`] and [`Action`] — a single prioritized ACL rule
//!   (match field, PERMIT/DROP decision, priority).
//! * [`Policy`] — a strictly prioritized rule list with first-match
//!   semantics and a default-PERMIT fallthrough.
//! * [`CubeList`] — a union of ternary cubes supporting exact set
//!   difference, used for redundancy analysis.
//! * [`CubeArena`] — a reusable scratch-buffer pool behind the cube
//!   algebra, so steady-state epochs allocate ~zero.
//! * [`classify`] — a batched first-match classification kernel
//!   ([`classify::classify_batch`]) with a structure-of-arrays layout.
//! * [`redundancy`] — exact (all-match) redundancy removal, the optional
//!   pre-pass from the paper's Figure 4 flow chart.
//!
//! # Example
//!
//! ```
//! use flowplace_acl::{Action, Packet, Policy, Rule, Ternary};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let policy = Policy::from_rules(vec![
//!     Rule::new(Ternary::parse("10**")?, Action::Permit, 3),
//!     Rule::new(Ternary::parse("1***")?, Action::Drop, 2),
//! ])?;
//! assert_eq!(policy.evaluate(&Packet::from_bits(0b1010, 4)), Action::Permit);
//! assert_eq!(policy.evaluate(&Packet::from_bits(0b1110, 4)), Action::Drop);
//! // Default action for unmatched packets is PERMIT.
//! assert_eq!(policy.evaluate(&Packet::from_bits(0b0000, 4)), Action::Permit);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod fivetuple;

mod arena;
mod cube;
mod packet;
mod policy;
pub mod redundancy;
mod rule;
mod ternary;
pub mod textfmt;

pub use arena::{ArenaStats, CubeArena};
pub use cube::{thread_arena_stats, with_thread_arena, CubeList};
pub use packet::Packet;
pub use policy::{Policy, PolicyError, PolicyId};
pub use rule::{Action, Rule, RuleId};
pub use ternary::{ParseTernaryError, Ternary, MAX_WIDTH};

//! Concrete packet headers.

use std::fmt;

use crate::ternary::MAX_WIDTH;

/// A fully specified packet header of a given bit width.
///
/// Only the low `width` bits are significant; higher bits are cleared on
/// construction so equality and hashing are structural.
///
/// # Example
///
/// ```
/// use flowplace_acl::{Packet, Ternary};
///
/// let p = Packet::from_bits(0b1010, 4);
/// assert!(Ternary::parse("10*0").unwrap().matches(&p));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Packet {
    bits: u128,
    width: u32,
}

impl Packet {
    /// Creates a packet from the low `width` bits of `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn from_bits(bits: u128, width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "packet width {width} not in 1..={MAX_WIDTH}"
        );
        let mask = if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        };
        Packet {
            bits: bits & mask,
            width,
        }
    }

    /// The header bits (low `width` bits significant).
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// The header width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Packet({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_high_bits() {
        let p = Packet::from_bits(0b11111, 3);
        assert_eq!(p.bits(), 0b111);
        assert_eq!(p, Packet::from_bits(0b111, 3));
    }

    #[test]
    fn display_msb_first() {
        let p = Packet::from_bits(0b0110, 4);
        assert_eq!(p.to_string(), "0110");
        assert_eq!(format!("{p:?}"), "Packet(0110)");
    }

    #[test]
    fn width_128_supported() {
        let p = Packet::from_bits(u128::MAX, 128);
        assert_eq!(p.bits(), u128::MAX);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Packet::from_bits(0, 0);
    }
}

//! Prioritized rule lists.

use std::fmt;

use crate::{Action, Packet, Rule, RuleId, Ternary};

/// Identifier of an ingress policy `Q_i` (one per network ingress port).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PolicyId(pub usize);

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// Error constructing a [`Policy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// Two rules share the same priority value (priorities must be strict).
    DuplicatePriority(u32),
    /// Two rules have match fields of different widths.
    MixedWidths {
        /// Width of the first rule.
        expected: u32,
        /// The conflicting width.
        found: u32,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::DuplicatePriority(p) => {
                write!(f, "duplicate rule priority {p} in policy")
            }
            PolicyError::MixedWidths { expected, found } => {
                write!(
                    f,
                    "mixed match-field widths in policy: {expected} vs {found}"
                )
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// A strictly prioritized ACL rule list with first-match semantics.
///
/// Rules are stored in descending priority order; [`RuleId`] indexes into
/// that order. A packet matching no rule is permitted (the ACL table only
/// filters — forwarding is owned by the routing module).
///
/// # Example
///
/// ```
/// use flowplace_acl::{Action, Packet, Policy, Rule, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let policy = Policy::from_rules(vec![
///     Rule::new(Ternary::parse("01**")?, Action::Drop, 1),
///     Rule::new(Ternary::parse("011*")?, Action::Permit, 2),
/// ])?;
/// // The higher-priority PERMIT shields part of the DROP's space.
/// assert_eq!(policy.evaluate(&Packet::from_bits(0b0110, 4)), Action::Permit);
/// assert_eq!(policy.evaluate(&Packet::from_bits(0b0100, 4)), Action::Drop);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Policy {
    /// Rules in descending priority order.
    rules: Vec<Rule>,
    width: u32,
}

impl Policy {
    /// Builds a policy from rules in any order; they are sorted by
    /// descending priority.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::DuplicatePriority`] if two rules share a
    /// priority, or [`PolicyError::MixedWidths`] if match-field widths
    /// differ. An empty rule list is valid (everything is permitted).
    pub fn from_rules(mut rules: Vec<Rule>) -> Result<Self, PolicyError> {
        rules.sort_by_key(|r| std::cmp::Reverse(r.priority()));
        let mut width = 0;
        for w in rules.windows(2) {
            if w[0].priority() == w[1].priority() {
                return Err(PolicyError::DuplicatePriority(w[0].priority()));
            }
        }
        if let Some(first) = rules.first() {
            width = first.match_field().width();
            for r in &rules {
                let fw = r.match_field().width();
                if fw != width {
                    return Err(PolicyError::MixedWidths {
                        expected: width,
                        found: fw,
                    });
                }
            }
        }
        Ok(Policy { rules, width })
    }

    /// Convenience constructor: assigns descending priorities to rules
    /// given in match order (first rule = highest priority).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::MixedWidths`] if match-field widths differ.
    pub fn from_ordered(specs: Vec<(Ternary, Action)>) -> Result<Self, PolicyError> {
        let n = specs.len() as u32;
        let rules = specs
            .into_iter()
            .enumerate()
            .map(|(i, (m, a))| Rule::new(m, a, n - i as u32))
            .collect();
        Policy::from_rules(rules)
    }

    /// The rules in descending priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the policy has no rules (everything permitted).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Match-field width, or 0 for an empty policy.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Iterates over `(RuleId, &Rule)` in descending priority order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules.iter().enumerate().map(|(i, r)| (RuleId(i), r))
    }

    /// Ids of all DROP rules.
    pub fn drop_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.iter()
            .filter(|(_, r)| r.action().is_drop())
            .map(|(id, _)| id)
    }

    /// Ids of all PERMIT rules.
    pub fn permit_rules(&self) -> impl Iterator<Item = RuleId> + '_ {
        self.iter()
            .filter(|(_, r)| r.action().is_permit())
            .map(|(id, _)| id)
    }

    /// First-match evaluation: the highest-priority matching rule's action,
    /// or PERMIT if no rule matches.
    pub fn evaluate(&self, packet: &Packet) -> Action {
        self.first_match(packet)
            .map(|id| self.rules[id.0].action())
            .unwrap_or(Action::Permit)
    }

    /// The id of the highest-priority rule matching `packet`, if any.
    pub fn first_match(&self, packet: &Packet) -> Option<RuleId> {
        self.rules
            .iter()
            .position(|r| r.match_field().matches(packet))
            .map(RuleId)
    }

    /// Returns a policy with the rule at `id` removed (priorities kept).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn without_rule(&self, id: RuleId) -> Policy {
        let mut rules = self.rules.clone();
        rules.remove(id.0);
        Policy {
            rules,
            width: self.width,
        }
    }

    /// Returns a policy extended with `rule`.
    ///
    /// # Errors
    ///
    /// Same as [`Policy::from_rules`].
    pub fn with_rule(&self, rule: Rule) -> Result<Policy, PolicyError> {
        let mut rules = self.rules.clone();
        rules.push(rule);
        Policy::from_rules(rules)
    }

    /// Tests semantic equivalence with another policy by exhaustive packet
    /// enumeration. Intended for tests and small widths.
    ///
    /// # Panics
    ///
    /// Panics if the shared width exceeds 20 bits.
    pub fn equivalent_by_enumeration(&self, other: &Policy) -> bool {
        let width = self.width.max(other.width).max(1);
        assert!(width <= 20, "width too large for enumeration");
        (0..(1u128 << width))
            .map(|bits| Packet::from_bits(bits, width))
            .all(|p| self.evaluate(&p) == other.evaluate(&p))
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy ({} rules):", self.rules.len())?;
        for r in &self.rules {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    #[test]
    fn sorted_by_descending_priority() {
        let p = Policy::from_rules(vec![
            Rule::new(t("0*"), Action::Drop, 1),
            Rule::new(t("1*"), Action::Permit, 5),
        ])
        .unwrap();
        assert_eq!(p.rule(RuleId(0)).priority(), 5);
        assert_eq!(p.rule(RuleId(1)).priority(), 1);
    }

    #[test]
    fn duplicate_priority_rejected() {
        let e = Policy::from_rules(vec![
            Rule::new(t("0*"), Action::Drop, 3),
            Rule::new(t("1*"), Action::Permit, 3),
        ])
        .unwrap_err();
        assert_eq!(e, PolicyError::DuplicatePriority(3));
    }

    #[test]
    fn mixed_width_rejected() {
        let e = Policy::from_rules(vec![
            Rule::new(t("0*"), Action::Drop, 1),
            Rule::new(t("1**"), Action::Permit, 2),
        ])
        .unwrap_err();
        assert!(matches!(e, PolicyError::MixedWidths { .. }));
    }

    #[test]
    fn empty_policy_permits_everything() {
        let p = Policy::from_rules(vec![]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.evaluate(&Packet::from_bits(0b1010, 4)), Action::Permit);
    }

    #[test]
    fn first_match_wins() {
        let p = Policy::from_ordered(vec![(t("11*"), Action::Permit), (t("1**"), Action::Drop)])
            .unwrap();
        assert_eq!(p.evaluate(&Packet::from_bits(0b110, 3)), Action::Permit);
        assert_eq!(p.evaluate(&Packet::from_bits(0b100, 3)), Action::Drop);
        assert_eq!(p.evaluate(&Packet::from_bits(0b010, 3)), Action::Permit);
        assert_eq!(p.first_match(&Packet::from_bits(0b010, 3)), None);
    }

    #[test]
    fn from_ordered_assigns_strict_priorities() {
        let p = Policy::from_ordered(vec![
            (t("1*"), Action::Drop),
            (t("0*"), Action::Permit),
            (t("**"), Action::Drop),
        ])
        .unwrap();
        let prios: Vec<u32> = p.rules().iter().map(|r| r.priority()).collect();
        assert_eq!(prios, vec![3, 2, 1]);
    }

    #[test]
    fn without_and_with_rule() {
        let p =
            Policy::from_ordered(vec![(t("1*"), Action::Drop), (t("0*"), Action::Permit)]).unwrap();
        let q = p.without_rule(RuleId(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.evaluate(&Packet::from_bits(0b10, 2)), Action::Permit);
        let r = q.with_rule(Rule::new(t("1*"), Action::Drop, 9)).unwrap();
        assert_eq!(r.evaluate(&Packet::from_bits(0b10, 2)), Action::Drop);
    }

    #[test]
    fn drop_and_permit_iterators() {
        let p = Policy::from_ordered(vec![
            (t("11*"), Action::Permit),
            (t("1**"), Action::Drop),
            (t("0**"), Action::Drop),
        ])
        .unwrap();
        assert_eq!(
            p.drop_rules().collect::<Vec<_>>(),
            vec![RuleId(1), RuleId(2)]
        );
        assert_eq!(p.permit_rules().collect::<Vec<_>>(), vec![RuleId(0)]);
    }

    #[test]
    fn equivalence_by_enumeration() {
        let a = Policy::from_ordered(vec![(t("1*"), Action::Drop)]).unwrap();
        let b =
            Policy::from_ordered(vec![(t("11"), Action::Drop), (t("10"), Action::Drop)]).unwrap();
        assert!(a.equivalent_by_enumeration(&b));
        let c = Policy::from_ordered(vec![(t("11"), Action::Drop)]).unwrap();
        assert!(!a.equivalent_by_enumeration(&c));
    }
}

//! Single ACL rules.

use std::fmt;

use crate::Ternary;

/// The decision field of an ACL rule: packets matching the rule are either
/// permitted (forwarded) or dropped.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Action {
    /// Forward the packet.
    Permit,
    /// Discard the packet.
    Drop,
}

impl Action {
    /// The opposite action.
    pub fn opposite(self) -> Action {
        match self {
            Action::Permit => Action::Drop,
            Action::Drop => Action::Permit,
        }
    }

    /// True iff the action is [`Action::Drop`].
    pub fn is_drop(self) -> bool {
        matches!(self, Action::Drop)
    }

    /// True iff the action is [`Action::Permit`].
    pub fn is_permit(self) -> bool {
        matches!(self, Action::Permit)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Permit => write!(f, "PERMIT"),
            Action::Drop => write!(f, "DROP"),
        }
    }
}

/// Index of a rule within its [`Policy`](crate::Policy), in descending
/// priority order (`RuleId(0)` is the highest-priority rule).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RuleId(pub usize);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single ACL rule: the tuple `(m, d, t)` from the paper — a ternary
/// matching field, a PERMIT/DROP decision, and a priority.
///
/// Larger `priority` values win: a packet is subject to the
/// highest-priority rule whose matching field it matches.
///
/// # Example
///
/// ```
/// use flowplace_acl::{Action, Rule, Ternary};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r = Rule::new(Ternary::parse("10**")?, Action::Drop, 7);
/// assert!(r.action().is_drop());
/// assert_eq!(r.priority(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rule {
    match_field: Ternary,
    action: Action,
    priority: u32,
}

impl Rule {
    /// Creates a rule from a matching field, an action, and a priority.
    pub fn new(match_field: Ternary, action: Action, priority: u32) -> Self {
        Rule {
            match_field,
            action,
            priority,
        }
    }

    /// The ternary matching field `m`.
    pub fn match_field(&self) -> &Ternary {
        &self.match_field
    }

    /// The decision `d`.
    pub fn action(&self) -> Action {
        self.action
    }

    /// The priority `t` (larger wins).
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// Returns this rule with a different priority.
    pub fn with_priority(&self, priority: u32) -> Rule {
        Rule { priority, ..*self }
    }

    /// True if the two rules match at least one common packet.
    pub fn overlaps(&self, other: &Rule) -> bool {
        self.match_field.intersects(&other.match_field)
    }

    /// True if the rules have identical match fields and actions
    /// (the merge criterion of §IV-B, ignoring priority and policy).
    pub fn is_identical_to(&self, other: &Rule) -> bool {
        self.match_field == other.match_field && self.action == other.action
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}",
            self.priority, self.match_field, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Ternary {
        Ternary::parse(s).unwrap()
    }

    #[test]
    fn action_helpers() {
        assert!(Action::Drop.is_drop());
        assert!(Action::Permit.is_permit());
        assert_eq!(Action::Drop.opposite(), Action::Permit);
        assert_eq!(Action::Permit.opposite(), Action::Drop);
        assert_eq!(Action::Drop.to_string(), "DROP");
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Rule::new(t("1**"), Action::Drop, 1);
        let b = Rule::new(t("10*"), Action::Permit, 2);
        let c = Rule::new(t("0**"), Action::Permit, 3);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn identical_ignores_priority() {
        let a = Rule::new(t("1*0"), Action::Drop, 1);
        let b = Rule::new(t("1*0"), Action::Drop, 9);
        let c = Rule::new(t("1*0"), Action::Permit, 1);
        assert!(a.is_identical_to(&b));
        assert!(!a.is_identical_to(&c));
    }

    #[test]
    fn display_contains_fields() {
        let r = Rule::new(t("1*"), Action::Drop, 4);
        assert_eq!(r.to_string(), "[4] 1* DROP");
    }

    #[test]
    fn with_priority_keeps_rest() {
        let r = Rule::new(t("1*"), Action::Drop, 4).with_priority(9);
        assert_eq!(r.priority(), 9);
        assert_eq!(r.match_field(), &t("1*"));
        assert_eq!(r.action(), Action::Drop);
    }
}

//! IPv4 5-tuple match construction.
//!
//! Real firewall rules are written over the classic 5-tuple — source and
//! destination IPv4 prefixes, source and destination port ranges, and a
//! protocol — not over raw ternary strings. This module packs a
//! [`FiveTuple`] into the 104-bit ternary layout used by packet
//! classifiers (and by ClassBench):
//!
//! | bits (high → low) | field |
//! |---|---|
//! | 103..72 | source IPv4 address |
//! | 71..40  | destination IPv4 address |
//! | 39..24  | source port |
//! | 23..8   | destination port |
//! | 7..0    | protocol |
//!
//! Exact-match ports and protocols map directly; arbitrary port *ranges*
//! are expanded into the minimal set of prefix cubes (the standard TCAM
//! range-expansion, at most `2·16 − 2` cubes per range).

use std::fmt;
use std::net::Ipv4Addr;

use crate::{Ternary, MAX_WIDTH};

/// Total width of the packed 5-tuple in bits.
pub const FIVE_TUPLE_WIDTH: u32 = 104;

const _: () = assert!(FIVE_TUPLE_WIDTH <= MAX_WIDTH);

/// An IPv4 prefix, e.g. `10.0.0.0/8`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    /// Network address (host bits ignored).
    pub addr: Ipv4Addr,
    /// Prefix length 0..=32.
    pub len: u8,
}

impl Prefix {
    /// Creates a prefix; host bits beyond `len` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Prefix {
            addr: Ipv4Addr::from(raw & mask),
            len,
        }
    }

    /// The match-anything prefix `0.0.0.0/0`.
    pub fn any() -> Self {
        Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    fn care_value(&self) -> (u32, u32) {
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        (mask, u32::from(self.addr) & mask)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// A port set: any, one port, or an inclusive range.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ports {
    /// All 65536 ports.
    Any,
    /// Exactly this port.
    Exact(u16),
    /// The inclusive range `lo..=hi`.
    Range(u16, u16),
}

impl Ports {
    /// The minimal prefix-cube cover of the port set, as
    /// `(care, value)` pairs over 16 bits.
    fn to_cubes(self) -> Vec<(u16, u16)> {
        match self {
            Ports::Any => vec![(0, 0)],
            Ports::Exact(p) => vec![(u16::MAX, p)],
            Ports::Range(lo, hi) => range_to_prefixes(lo, hi),
        }
    }
}

impl fmt::Display for Ports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ports::Any => write!(f, "*"),
            Ports::Exact(p) => write!(f, "{p}"),
            Ports::Range(lo, hi) => write!(f, "{lo}-{hi}"),
        }
    }
}

/// Minimal prefix cover of `[lo, hi]` over 16-bit values, as
/// `(care_mask, value)` pairs — the classic TCAM range expansion.
fn range_to_prefixes(lo: u16, hi: u16) -> Vec<(u16, u16)> {
    assert!(lo <= hi, "empty port range {lo}-{hi}");
    let mut out = Vec::new();
    let mut cur = lo as u32;
    let end = hi as u32;
    while cur <= end {
        // Largest power-of-two block starting at `cur` that fits.
        let max_align = if cur == 0 { 16 } else { cur.trailing_zeros() };
        let mut size_log = max_align.min(16);
        while size_log > 0 && cur + (1 << size_log) - 1 > end {
            size_log -= 1;
        }
        let care = if size_log >= 16 {
            0u16
        } else {
            u16::MAX << size_log
        };
        out.push((care, cur as u16));
        cur += 1 << size_log;
        if cur == 0x1_0000 {
            break;
        }
    }
    out
}

/// A protocol constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Protocol {
    /// Any protocol.
    Any,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// ICMP (1).
    Icmp,
    /// A raw protocol number.
    Number(u8),
}

impl Protocol {
    fn care_value(self) -> (u8, u8) {
        match self {
            Protocol::Any => (0, 0),
            Protocol::Tcp => (u8::MAX, 6),
            Protocol::Udp => (u8::MAX, 17),
            Protocol::Icmp => (u8::MAX, 1),
            Protocol::Number(n) => (u8::MAX, n),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Any => write!(f, "ip"),
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Number(n) => write!(f, "proto-{n}"),
        }
    }
}

/// An IPv4 5-tuple match specification.
///
/// # Example
///
/// ```
/// use std::net::Ipv4Addr;
/// use flowplace_acl::fivetuple::{FiveTuple, Ports, Prefix, Protocol};
///
/// let spec = FiveTuple {
///     src: Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
///     dst: Prefix::new(Ipv4Addr::new(192, 168, 1, 0), 24),
///     src_ports: Ports::Any,
///     dst_ports: Ports::Exact(443),
///     protocol: Protocol::Tcp,
/// };
/// let cubes = spec.to_ternaries();
/// assert_eq!(cubes.len(), 1); // exact port: no range expansion
/// assert_eq!(cubes[0].width(), 104);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FiveTuple {
    /// Source address prefix.
    pub src: Prefix,
    /// Destination address prefix.
    pub dst: Prefix,
    /// Source port set.
    pub src_ports: Ports,
    /// Destination port set.
    pub dst_ports: Ports,
    /// Protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// A match-everything tuple.
    pub fn any() -> Self {
        FiveTuple {
            src: Prefix::any(),
            dst: Prefix::any(),
            src_ports: Ports::Any,
            dst_ports: Ports::Any,
            protocol: Protocol::Any,
        }
    }

    /// Packs the tuple into ternary cubes (one per port-range fragment
    /// combination; exactly one when both port sets are `Any`/`Exact`).
    pub fn to_ternaries(&self) -> Vec<Ternary> {
        let (src_care, src_val) = self.src.care_value();
        let (dst_care, dst_val) = self.dst.care_value();
        let (proto_care, proto_val) = self.protocol.care_value();
        let mut out = Vec::new();
        for (spc, spv) in self.src_ports.to_cubes() {
            for (dpc, dpv) in self.dst_ports.to_cubes() {
                let care: u128 = ((src_care as u128) << 72)
                    | ((dst_care as u128) << 40)
                    | ((spc as u128) << 24)
                    | ((dpc as u128) << 8)
                    | proto_care as u128;
                let value: u128 = ((src_val as u128) << 72)
                    | ((dst_val as u128) << 40)
                    | ((spv as u128) << 24)
                    | ((dpv as u128) << 8)
                    | proto_val as u128;
                out.push(Ternary::new(FIVE_TUPLE_WIDTH, care, value));
            }
        }
        out
    }

    /// The packed header bits of a concrete 5-tuple packet (no wildcards),
    /// for building test [`Packet`](crate::Packet)s.
    pub fn pack_concrete(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        protocol: u8,
    ) -> u128 {
        ((u32::from(src) as u128) << 72)
            | ((u32::from(dst) as u128) << 40)
            | ((src_port as u128) << 24)
            | ((dst_port as u128) << 8)
            | protocol as u128
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} sport {} dport {}",
            self.protocol, self.src, self.dst, self.src_ports, self.dst_ports
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Packet;

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 8);
        assert_eq!(p.addr, Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(p.to_string(), "10.0.0.0/8");
        assert_eq!(Prefix::any().to_string(), "0.0.0.0/0");
    }

    #[test]
    fn range_expansion_is_exact_cover() {
        for (lo, hi) in [
            (0u16, 65535u16),
            (1, 1),
            (80, 88),
            (1024, 65535),
            (5, 6),
            (0, 7),
        ] {
            let cubes = range_to_prefixes(lo, hi);
            // Every port in range is covered exactly once; none outside.
            for port in 0..=u16::MAX {
                let covered = cubes
                    .iter()
                    .filter(|(care, val)| (port ^ val) & care == 0)
                    .count();
                let expected = usize::from(port >= lo && port <= hi);
                assert_eq!(covered, expected, "port {port} in [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn range_expansion_is_minimal_for_worst_case() {
        // [1, 65534] is the classic worst case: 30 prefixes.
        assert_eq!(range_to_prefixes(1, 65534).len(), 30);
        assert_eq!(range_to_prefixes(0, 65535).len(), 1);
    }

    #[test]
    fn tuple_matches_concrete_packets() {
        let spec = FiveTuple {
            src: Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
            dst: Prefix::new(Ipv4Addr::new(192, 168, 1, 0), 24),
            src_ports: Ports::Any,
            dst_ports: Ports::Range(8000, 8080),
            protocol: Protocol::Tcp,
        };
        let cubes = spec.to_ternaries();
        let hit = |src, dst, sp, dp, proto| {
            let bits = FiveTuple::pack_concrete(src, dst, sp, dp, proto);
            let pkt = Packet::from_bits(bits, FIVE_TUPLE_WIDTH);
            cubes.iter().any(|c| c.matches(&pkt))
        };
        assert!(hit(
            Ipv4Addr::new(10, 9, 9, 9),
            Ipv4Addr::new(192, 168, 1, 77),
            1234,
            8040,
            6
        ));
        // Wrong dst port.
        assert!(!hit(
            Ipv4Addr::new(10, 9, 9, 9),
            Ipv4Addr::new(192, 168, 1, 77),
            1234,
            9000,
            6
        ));
        // Wrong protocol.
        assert!(!hit(
            Ipv4Addr::new(10, 9, 9, 9),
            Ipv4Addr::new(192, 168, 1, 77),
            1234,
            8040,
            17
        ));
        // Src outside 10/8.
        assert!(!hit(
            Ipv4Addr::new(11, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 77),
            1234,
            8040,
            6
        ));
    }

    #[test]
    fn any_tuple_is_one_full_wildcard() {
        let cubes = FiveTuple::any().to_ternaries();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].wildcard_count(), FIVE_TUPLE_WIDTH);
    }

    #[test]
    fn policies_from_tuples_work_end_to_end() {
        use crate::{Action, Policy, Rule};
        // Permit web traffic to the DMZ, drop everything else to it.
        let permit = FiveTuple {
            src: Prefix::any(),
            dst: Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24),
            src_ports: Ports::Any,
            dst_ports: Ports::Exact(443),
            protocol: Protocol::Tcp,
        };
        let drop = FiveTuple {
            src: Prefix::any(),
            dst: Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24),
            src_ports: Ports::Any,
            dst_ports: Ports::Any,
            protocol: Protocol::Any,
        };
        let mut rules = Vec::new();
        let mut prio = 100;
        for cube in permit.to_ternaries() {
            rules.push(Rule::new(cube, Action::Permit, prio));
            prio -= 1;
        }
        for cube in drop.to_ternaries() {
            rules.push(Rule::new(cube, Action::Drop, prio));
            prio -= 1;
        }
        let policy = Policy::from_rules(rules).unwrap();
        let https = Packet::from_bits(
            FiveTuple::pack_concrete(
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(203, 0, 113, 10),
                5555,
                443,
                6,
            ),
            FIVE_TUPLE_WIDTH,
        );
        let ssh = Packet::from_bits(
            FiveTuple::pack_concrete(
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(203, 0, 113, 10),
                5555,
                22,
                6,
            ),
            FIVE_TUPLE_WIDTH,
        );
        assert_eq!(policy.evaluate(&https), Action::Permit);
        assert_eq!(policy.evaluate(&ssh), Action::Drop);
    }

    #[test]
    fn display_forms() {
        let spec = FiveTuple {
            src: Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8),
            dst: Prefix::any(),
            src_ports: Ports::Exact(53),
            dst_ports: Ports::Range(1024, 2047),
            protocol: Protocol::Udp,
        };
        assert_eq!(
            spec.to_string(),
            "udp 10.0.0.0/8 -> 0.0.0.0/0 sport 53 dport 1024-2047"
        );
    }
}

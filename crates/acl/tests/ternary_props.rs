//! Property tests for the ternary match algebra.
//!
//! Each property is checked on a seeded corpus of random 8-bit cubes and
//! policies, with the claim verified *exhaustively* over all 256 packets
//! of the width — so a passing run is a proof on the sampled structures,
//! not a statistical argument. The harness is the in-tree seeded RNG
//! (the workspace is dependency-free; no proptest/quickcheck).
//!
//! Properties:
//!
//! 1. **Cube difference is exact**: after subtracting cubes `B₁..Bₖ`
//!    from `A`, the cube list contains exactly the packets of
//!    `A \ (B₁ ∪ … ∪ Bₖ)`, and its reported cardinality matches.
//! 2. **`Rule::overlaps` is symmetric and exact**: it returns true iff
//!    some packet matches both rules, in either argument order.
//! 3. **Redundancy removal preserves packet semantics**: the reduced
//!    policy gives every packet the same first-match decision, and a
//!    second pass removes nothing (the fixpoint claim).

use flowplace_acl::{redundancy, Action, CubeList, Packet, Policy, Rule, Ternary};
use flowplace_rng::{Rng, StdRng};

const WIDTH: u32 = 8;
const CASES: usize = 64;

fn wmask() -> u128 {
    (1u128 << WIDTH) - 1
}

fn random_cube(rng: &mut StdRng) -> Ternary {
    let care = rng.gen::<u64>() as u128 & wmask();
    let value = rng.gen::<u64>() as u128 & care;
    Ternary::new(WIDTH, care, value)
}

fn all_packets() -> impl Iterator<Item = Packet> {
    (0..(1u128 << WIDTH)).map(|bits| Packet::from_bits(bits, WIDTH))
}

fn random_policy(rng: &mut StdRng) -> Policy {
    let n = rng.gen_range(1usize..13);
    let specs: Vec<(Ternary, Action)> = (0..n)
        .map(|_| {
            let action = if rng.gen_bool(0.5) {
                Action::Permit
            } else {
                Action::Drop
            };
            (random_cube(rng), action)
        })
        .collect();
    Policy::from_ordered(specs).expect("generated priorities are strict")
}

#[test]
fn cube_difference_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xA1_6EB6A);
    for case in 0..CASES {
        let a = random_cube(&mut rng);
        let k = rng.gen_range(0usize..5);
        let subtracted: Vec<Ternary> = (0..k).map(|_| random_cube(&mut rng)).collect();

        let mut list = CubeList::from_cube(a);
        for b in &subtracted {
            list.subtract(b);
        }

        let mut expected_cardinality: u128 = 0;
        for p in all_packets() {
            let expected = a.matches(&p) && !subtracted.iter().any(|b| b.matches(&p));
            assert_eq!(
                list.contains_packet(&p),
                expected,
                "case {case}: packet {p} membership wrong after subtracting {subtracted:?} \
                 from {a}",
            );
            expected_cardinality += expected as u128;
        }
        assert_eq!(
            list.cardinality(),
            expected_cardinality,
            "case {case}: cardinality of {a} minus {subtracted:?}"
        );
        // The cubes of the difference must be disjoint, or cardinality
        // would double-count.
        let cubes = list.cubes();
        for (i, x) in cubes.iter().enumerate() {
            for y in &cubes[i + 1..] {
                assert!(
                    !x.intersects(y),
                    "case {case}: difference cubes {x} and {y} overlap"
                );
            }
        }
    }
}

#[test]
fn rule_overlaps_is_symmetric_and_exact() {
    let mut rng = StdRng::seed_from_u64(0x0E7_1A95);
    for case in 0..CASES {
        let a = Rule::new(random_cube(&mut rng), Action::Permit, 2);
        let b = Rule::new(random_cube(&mut rng), Action::Drop, 1);
        let exhaustive =
            all_packets().any(|p| a.match_field().matches(&p) && b.match_field().matches(&p));
        assert_eq!(
            a.overlaps(&b),
            exhaustive,
            "case {case}: overlaps({}, {}) disagrees with packet enumeration",
            a.match_field(),
            b.match_field()
        );
        assert_eq!(
            a.overlaps(&b),
            b.overlaps(&a),
            "case {case}: overlaps is asymmetric for {} / {}",
            a.match_field(),
            b.match_field()
        );
    }
}

#[test]
fn redundancy_removal_preserves_packet_semantics() {
    let mut rng = StdRng::seed_from_u64(0x5EED_AC15);
    let mut total_removed = 0usize;
    for case in 0..CASES {
        let policy = random_policy(&mut rng);
        let report = redundancy::remove_redundant(&policy);
        total_removed += report.removed_count();
        for p in all_packets() {
            assert_eq!(
                policy.evaluate(&p),
                report.policy.evaluate(&p),
                "case {case}: packet {p} decided differently after removing \
                 {} rules from {policy:?}",
                report.removed_count()
            );
        }
        // Fixpoint: the reduced policy contains no redundant rule.
        let again = redundancy::remove_redundant(&report.policy);
        assert_eq!(
            again.removed_count(),
            0,
            "case {case}: second pass still removed {:?}",
            again.removed
        );
    }
    // Guard against a vacuous corpus: random policies with wide cubes
    // must exhibit *some* redundancy across 64 cases.
    assert!(
        total_removed > 0,
        "corpus produced no redundant rule at all — property checked nothing"
    );
}

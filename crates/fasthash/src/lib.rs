//! Zero-dependency FNV-1a hashing shared across the workspace.
//!
//! The workspace's default map is `BTreeMap`: iteration order is part of
//! the determinism contract wherever a map's contents reach output
//! (placements, tables, telemetry dumps). But several hot structures are
//! *lookup-only* — they are probed by key and never iterated (or their
//! iteration is explicitly sorted at the use site) — and for those the
//! tree's pointer-chasing and `Ord` comparisons are pure overhead. This
//! crate provides the drop-in alternative: `std::collections::HashMap`
//! with FNV-1a instead of the default SipHash, which is both faster on
//! the short fixed-width keys we use (fingerprints, ids, literal tuples)
//! and — unlike the std default — *unseeded*, so hash values are stable
//! across processes and runs.
//!
//! Two layers:
//!
//! - [`FnvHasher`] / [`FnvBuildHasher`] and the [`FnvHashMap`] /
//!   [`FnvHashSet`] aliases: the `std::hash` integration for container
//!   keys.
//! - [`Fnv64`]: the incremental word-wise writer used to build stable
//!   64-bit content fingerprints from canonical little-endian
//!   serializations (the warm-path cache keys in `flowplace-core`).
//!
//! Both layers are the same FNV-1a core, verified against the published
//! test vectors in this crate's tests.
//!
//! # When is an unordered map safe?
//!
//! A `FnvHashMap` is safe exactly when no observable output depends on
//! its iteration order: pure key probes, membership/dedup sets, and maps
//! whose (rare) iteration is sorted before use. Anything that feeds
//! solver variable order, table emission, replay output, or telemetry
//! must stay on `BTreeMap` or sort at the iteration point — see
//! DESIGN.md §16 for the policy and the differential suites that
//! enforce it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A `std::hash::Hasher` computing 64-bit FNV-1a over the written bytes.
///
/// Deterministic (no per-process seed) and allocation-free; best on the
/// short keys this workspace uses (≤ a few dozen bytes). Not DoS
/// resistant — all keys here are internally generated, never
/// attacker-controlled.
#[derive(Clone, Copy, Debug)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`] — plugs into `HashMap::with_hasher`
/// and the [`FnvHashMap`]/[`FnvHashSet`] aliases.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// `HashMap` keyed with FNV-1a. Lookup-only use; see the crate docs for
/// the iteration-order policy.
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// `HashSet` hashed with FNV-1a. Membership/dedup use; see the crate
/// docs for the iteration-order policy.
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

/// Incremental FNV-1a writer over canonical little-endian words.
///
/// This is the fingerprint builder: callers feed a canonical
/// serialization of their data (fixed word sizes, explicit
/// presence/length markers) and take the 64-bit digest. Unlike
/// [`FnvHasher`] it is not tied to the `std::hash` traits, so digests
/// are a pure function of the written words — stable across processes,
/// replays, and std library versions.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    /// Absorbs a `u128` as 16 little-endian bytes (low word first).
    pub fn u128(&mut self, x: u128) {
        self.u64(x as u64);
        self.u64((x >> 64) as u64);
    }

    /// Absorbs a `usize` widened to `u64` (platform-independent digest).
    pub fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    /// Absorbs an `f64` by its IEEE-754 bit pattern.
    pub fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    /// Absorbs a `bool` as one byte.
    pub fn bool(&mut self, x: bool) {
        self.byte(x as u8);
    }

    /// The 64-bit digest of everything absorbed so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    /// Published FNV-1a 64-bit test vectors (Fowler/Noll/Vo reference
    /// implementation, draft-eastlake-fnv).
    const VECTORS: &[(&[u8], u64)] = &[
        (b"", 0xcbf2_9ce4_8422_2325),
        (b"a", 0xaf63_dc4c_8601_ec8c),
        (b"b", 0xaf63_df4c_8601_f1a5),
        (b"c", 0xaf63_de4c_8601_eff2),
        (b"foobar", 0x85944171f73967e8),
        (b"hello world", 0x779a65e7023cd2e7),
        (b"chongo was here!\n", 0x46810940eff5f915),
    ];

    #[test]
    fn hasher_matches_published_vectors() {
        for &(input, digest) in VECTORS {
            let mut h = FnvHasher::default();
            h.write(input);
            assert_eq!(h.finish(), digest, "input {input:?}");
        }
    }

    #[test]
    fn incremental_writer_matches_published_vectors() {
        for &(input, digest) in VECTORS {
            let mut h = Fnv64::new();
            h.bytes(input);
            assert_eq!(h.finish(), digest, "input {input:?}");
        }
    }

    #[test]
    fn byte_at_a_time_equals_one_shot() {
        let mut one = FnvHasher::default();
        one.write(b"split anywhere");
        let mut split = FnvHasher::default();
        split.write(b"split");
        split.write(b" any");
        split.write(b"where");
        assert_eq!(one.finish(), split.finish());
    }

    #[test]
    fn word_writers_use_little_endian() {
        let mut words = Fnv64::new();
        words.u64(0x0807_0605_0403_0201);
        let mut bytes = Fnv64::new();
        bytes.bytes(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(words.finish(), bytes.finish());

        let mut wide = Fnv64::new();
        wide.u128(0x1);
        let mut low_then_high = Fnv64::new();
        low_then_high.u64(1);
        low_then_high.u64(0);
        assert_eq!(wide.finish(), low_then_high.finish());
    }

    #[test]
    fn build_hasher_is_unseeded_and_stable() {
        let b1 = FnvBuildHasher::default();
        let b2 = FnvBuildHasher::default();
        let h1 = b1.hash_one(0xdead_beef_u64);
        let h2 = b2.hash_one(0xdead_beef_u64);
        assert_eq!(h1, h2, "two builders must agree (no random seed)");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FnvHashMap<(usize, usize), u32> = FnvHashMap::default();
        map.insert((1, 2), 3);
        map.insert((4, 5), 6);
        assert_eq!(map.get(&(1, 2)), Some(&3));
        assert_eq!(map.len(), 2);

        let mut set: FnvHashSet<Vec<i32>> = FnvHashSet::default();
        assert!(set.insert(vec![1, -2, 3]));
        assert!(!set.insert(vec![1, -2, 3]));
        assert!(set.contains(&vec![1, -2, 3]));
    }

    #[test]
    fn derived_hash_routes_through_fnv() {
        // A struct's derived Hash must feed the same core: hashing the
        // same value twice through the alias map's builder is stable.
        #[derive(Hash)]
        struct Key {
            a: u64,
            b: bool,
        }
        let b = FnvBuildHasher::default();
        let k = Key { a: 7, b: true };
        assert_eq!(b.hash_one(&k), b.hash_one(&Key { a: 7, b: true }));
    }
}

//! Self-contained deterministic pseudo-random number generation.
//!
//! The workspace must build and test without a reachable crates.io
//! registry, so it cannot depend on the `rand` crate. This crate is the
//! substitute: a seedable xoshiro256++ generator behind a small
//! [`Rng`] trait whose surface mirrors the subset of `rand` the
//! workspace uses (`gen`, `gen_range`, `gen_bool`, `gen_ratio`).
//!
//! Everything here is deterministic in the seed — there is deliberately
//! no entropy source. Experiment sweeps, route generation, policy
//! generation, and verification packet sampling are all reproducible
//! bit-for-bit across runs and platforms.
//!
//! ```
//! use flowplace_rng::{Rng, StdRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let die = a.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits, with convenience
/// samplers layered on top (mirroring the subset of `rand::Rng` used in
/// this workspace).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 128 uniformly random bits.
    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Samples a uniformly distributed value of type `T`.
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive
    /// (`a..=b`) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        // 53 uniform mantissa bits, the exact precision of an f64 in [0,1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "zero denominator");
        assert!(
            numerator <= denominator,
            "ratio {numerator}/{denominator} exceeds 1"
        );
        uniform_u64(self, denominator as u64) < numerator as u64
    }
}

/// Uniform in `0..bound` by rejection sampling (unbiased).
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject the top partial block so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Uniform in `0..bound` over 128 bits by rejection sampling.
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u128() & (bound - 1);
    }
    let zone = u128::MAX - (u128::MAX % bound) - 1;
    loop {
        let v = rng.next_u128();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Types [`Rng::gen`] can sample uniformly.
pub trait Sample: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u128()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with full 53-bit precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer ranges [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return rng.next_u128() as $t;
                }
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, u128);

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + uniform_u64(rng, span) as i32
    }
}

impl SampleRange for RangeInclusive<i32> {
    type Output = i32;
    fn sample_from<R: Rng>(self, rng: &mut R) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        lo + uniform_u64(rng, span) as i32
    }
}

/// The workspace's standard generator: xoshiro256++, seeded through
/// SplitMix64 (the seeding procedure its authors recommend).
///
/// Fast, 256 bits of state, passes BigCrush; not cryptographic. The name
/// mirrors `rand::rngs::StdRng` so call sites read the same, but the
/// stream is this crate's own and stable across releases.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams, on every platform, forever.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expands the seed into the full 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5u32);
            assert_eq!(w, 5);
            let x = rng.gen_range(-4..7i32);
            assert!((-4..7).contains(&x));
            let y = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads {heads}");
    }

    #[test]
    fn gen_ratio_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..8000).filter(|_| rng.gen_ratio(1, 8)).count();
        assert!((700..1300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| rng.gen_ratio(8, 8)));
        assert!((0..100).all(|_| !rng.gen_ratio(0, 8)));
    }

    #[test]
    fn u128_sampling_uses_both_halves() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: u128 = rng.gen();
        assert_ne!(v >> 64, 0, "high half populated");
        assert_ne!(v & u128::from(u64::MAX), 0, "low half populated");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn rng_trait_object_and_reborrow() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let a = takes_impl(&mut rng);
        let b = takes_impl(&mut rng);
        assert_ne!(a, b);
    }
}

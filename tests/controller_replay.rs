//! End-to-end tests of the controller runtime on the shipped demo
//! trace: the escalation ladder fires greedy → restricted → full as
//! capacity tightens, every epoch passes golden-model verification, and
//! replay is byte-for-byte deterministic.

use flowplace::ctrl::{parse_trace, Controller, CtrlOptions, CtrlStats, EpochReport, Tier};
use flowplace::prelude::*;

const TRACE: &str = include_str!("../traces/controller_demo.trace");

fn fresh_controller() -> Controller {
    // Mirrors the `flowplace ctrl replay` CLI defaults.
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(16);
    Controller::new(topo, CtrlOptions::default())
}

fn replay_demo() -> (Vec<EpochReport>, String, CtrlStats, Controller) {
    let mut ctrl = fresh_controller();
    let reports = ctrl.replay_trace(TRACE).expect("demo trace replays");
    let dump = ctrl.dataplane().dump();
    let stats = ctrl.stats().clone();
    (reports, dump, stats, ctrl)
}

#[test]
fn demo_trace_is_big_enough() {
    let events = parse_trace(TRACE).expect("demo trace parses");
    assert!(
        events.len() >= 50,
        "demo trace has only {} events",
        events.len()
    );
}

#[test]
fn every_epoch_verifies_and_every_event_applies() {
    let (reports, _, stats, ctrl) = replay_demo();
    assert!(!reports.is_empty());
    assert_eq!(stats.verify_failures, 0, "an epoch failed verification");
    assert_eq!(
        stats.events_failed, 0,
        "an event was rejected: {reports:#?}"
    );
    assert_eq!(ctrl.pending(), 0, "queue drained");
    // The dataplane never exceeds the final capacities.
    for (i, cap) in ctrl.instance().topology().capacities().iter().enumerate() {
        let occ = ctrl.dataplane().switch(SwitchId(i)).occupancy();
        assert!(occ <= *cap, "s{i}: {occ} entries exceed capacity {cap}");
    }
}

#[test]
fn tiers_escalate_as_capacity_tightens() {
    let (reports, _, stats, _) = replay_demo();

    // All three tiers fire over the trace.
    assert!(stats.greedy_ok >= 20, "greedy tier underused: {stats:?}");
    assert!(
        stats.restricted_ok >= 2,
        "restricted tier never fired: {stats:?}"
    );
    assert!(stats.full_ok >= 2, "full tier never fired: {stats:?}");

    // And they first fire in ladder order: the rule burst settles
    // greedily before anything needs a restricted re-place, and the
    // full re-solves only start once capacity tightens.
    let tiers: Vec<Tier> = reports.iter().flat_map(|r| r.tiers()).collect();
    let first = |t: Tier| tiers.iter().position(|&x| x == t);
    let (g, r, f) = (
        first(Tier::Greedy).expect("a greedy event"),
        first(Tier::Restricted).expect("a restricted event"),
        first(Tier::Full).expect("a full event"),
    );
    assert!(r < f, "restricted fired at {r}, after full at {f}");
    assert!(g < f, "greedy fired at {g}, after full at {f}");

    // The identical event kind lands on different rungs depending on
    // how tight capacity is: `capacity s1 16` keeps the deployed
    // placement (greedy), `capacity s0 4` forces a global re-solve.
    let outcome_of = |needle: &str| {
        reports
            .iter()
            .flat_map(|r| &r.outcomes)
            .find(|(e, _)| e.to_string() == needle)
            .map(|(_, o)| o.clone())
            .unwrap_or_else(|| panic!("event `{needle}` not found"))
    };
    use flowplace::ctrl::EventOutcome;
    assert_eq!(
        outcome_of("capacity s1 16"),
        EventOutcome::Applied(Tier::Greedy),
        "a loose capacity change must not re-solve"
    );
    assert_eq!(
        outcome_of("capacity s0 4"),
        EventOutcome::Applied(Tier::Full),
        "shrinking the hot ingress switch must force a full re-solve"
    );
    assert_eq!(outcome_of("solve"), EventOutcome::Applied(Tier::Full));
}

#[test]
fn replaying_twice_is_byte_identical() {
    let (_, dump_a, stats_a, _) = replay_demo();
    let (_, dump_b, stats_b, _) = replay_demo();
    assert_eq!(dump_a, dump_b, "dataplane dumps diverged between runs");
    assert_eq!(stats_a, stats_b, "stats diverged between runs");
    assert!(!dump_a.is_empty());
}

#[test]
fn tiny_batches_commit_more_epochs_but_converge_identically() {
    let (_, dump_default, _, _) = replay_demo();

    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(16);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            batch_size: 1,
            ..CtrlOptions::default()
        },
    );
    let reports = ctrl.replay_trace(TRACE).expect("unbatched replay works");
    let events = parse_trace(TRACE).unwrap().len();
    assert_eq!(reports.len(), events, "batch_size 1 => one epoch per event");
    assert_eq!(ctrl.stats().verify_failures, 0);
    assert_eq!(
        ctrl.dataplane().dump(),
        dump_default,
        "batching must not change the converged dataplane"
    );
}

//! Property tests for the observability layer over seeded controller
//! runs: telemetry must be structurally sound no matter what event
//! stream the controller chews through.
//!
//! Invariants checked per seed:
//!
//! * spans nest properly — no span ever partially overlaps another, a
//!   child lies strictly inside its parent, and the recorder ends with
//!   zero open spans and zero mis-nestings;
//! * the sum of child span durations never exceeds the parent's (a
//!   structural consequence of the one-tick-per-edge clock, pinned here
//!   against regressions);
//! * after every epoch, each per-switch `tcam.occupancy` gauge is at
//!   most its `tcam.capacity` gauge;
//! * the warm-memo ledger balances: `hit + miss == lookups`, both in
//!   [`CtrlStats`] and in the exported registry counters;
//! * both canonical dumps pass the `flowplace.obs.v1` validator.

use flowplace::acl::{Action, Policy, Rule, RuleId, Ternary};
use flowplace::obs::{validate_obs_json, Obs, SpanData};
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 4;
const SEEDS: u64 = 8;

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    let action = if rng.gen_bool(0.6) {
        Action::Drop
    } else {
        Action::Permit
    };
    Rule::new(Ternary::new(WIDTH, care, value), action, priority)
}

fn install(rng: &mut StdRng, ingress: usize) -> Event {
    let (egress, switches) = if ingress == 0 {
        (2, vec![0, 1, 2])
    } else {
        (0, vec![2, 1, 0])
    };
    let n = rng.gen_range(2..=4usize);
    let mut rules: Vec<Rule> = (0..n).map(|p| rand_rule(rng, p as u32 + 2)).collect();
    rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
    Event::InstallPolicy {
        ingress: EntryPortId(ingress),
        policy: Policy::from_rules(rules).expect("distinct priorities"),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

fn rand_event(rng: &mut StdRng, priority: &mut u32) -> Event {
    *priority += 1;
    let ingress = EntryPortId(rng.gen_range(0..2usize));
    match rng.gen_range(0..10u32) {
        0..=3 => Event::AddRule {
            ingress,
            rule: rand_rule(rng, *priority),
        },
        4..=5 => Event::RemoveRule {
            ingress,
            rule: RuleId(rng.gen_range(0..4usize)),
        },
        6 => Event::ModifyRule {
            ingress,
            rule: RuleId(rng.gen_range(0..4usize)),
            replacement: rand_rule(rng, *priority),
        },
        7 => Event::Checkpoint,
        8 => Event::Rollback,
        _ => Event::Solve,
    }
}

/// Drives one seeded event stream through an observed controller,
/// checking the per-epoch gauge invariant along the way, and returns
/// the controller for post-hoc trace/metric checks.
fn drive(seed: u64) -> Controller {
    let mut rng = StdRng::seed_from_u64(0x0B5E_0000 ^ seed);
    let mut topo = Topology::linear(3);
    let capacity = rng.gen_range(6..12usize);
    topo.set_uniform_capacity(capacity);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            batch_size: 2,
            ..CtrlOptions::default()
        },
    );
    ctrl.attach_obs(Obs::new());

    let mut events = vec![install(&mut rng, 0), install(&mut rng, 1)];
    let mut priority = 10;
    for _ in 0..rng.gen_range(6..10usize) {
        events.push(rand_event(&mut rng, &mut priority));
    }
    for (step, event) in events.into_iter().enumerate() {
        ctrl.submit(event).expect("queue has room");
        while let Some(_report) = ctrl
            .run_epoch()
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: epoch failed: {e}"))
        {
            let obs = ctrl.obs().expect("obs attached");
            for i in 0..3usize {
                let tag = format!("s{i}");
                let labels = [("switch", tag.as_str())];
                let occ = obs
                    .metrics
                    .gauge_value("tcam.occupancy", &labels)
                    .unwrap_or_else(|| panic!("seed {seed}: no occupancy gauge for {tag}"));
                let cap = obs
                    .metrics
                    .gauge_value("tcam.capacity", &labels)
                    .unwrap_or_else(|| panic!("seed {seed}: no capacity gauge for {tag}"));
                assert!(
                    occ <= cap,
                    "seed {seed} step {step}: switch {tag} occupancy {occ} > capacity {cap}"
                );
            }
        }
    }
    ctrl
}

/// Closed-interval endpoints of a span (every recorded span must be
/// closed once the controller is idle).
fn interval(s: &SpanData) -> (u64, u64) {
    (s.start_tick, s.end_tick.expect("span closed at idle"))
}

#[test]
fn spans_nest_and_never_overlap_cross() {
    for seed in 0..SEEDS {
        let ctrl = drive(seed);
        let obs = ctrl.obs().expect("obs attached");
        assert_eq!(obs.spans.open_count(), 0, "seed {seed}: spans left open");
        assert_eq!(obs.spans.mis_nested(), 0, "seed {seed}: mis-nested ends");
        let spans = obs.spans.spans();
        assert!(!spans.is_empty(), "seed {seed}: nothing recorded");

        for (i, s) in spans.iter().enumerate() {
            let (start, end) = interval(s);
            assert!(start < end, "seed {seed}: span {i} has an empty interval");
            if let Some(parent) = s.parent {
                let p = &spans[parent.0 as usize];
                let (ps, pe) = interval(p);
                assert!(
                    ps < start && end < pe,
                    "seed {seed}: span {i} ({}) escapes its parent {}",
                    s.name,
                    p.name
                );
                assert_eq!(s.depth, p.depth + 1, "seed {seed}: span {i} depth");
            } else {
                assert_eq!(s.depth, 0, "seed {seed}: root span {i} at depth > 0");
            }
        }
        // No partial overlap between any two spans: intervals are
        // either disjoint or strictly nested.
        for (i, a) in spans.iter().enumerate() {
            let (a0, a1) = interval(a);
            for (j, b) in spans.iter().enumerate().skip(i + 1) {
                let (b0, b1) = interval(b);
                let disjoint = a1 < b0 || b1 < a0;
                let nested = (a0 < b0 && b1 < a1) || (b0 < a0 && a1 < b1);
                assert!(
                    disjoint || nested,
                    "seed {seed}: spans {i} ({}) and {j} ({}) overlap-cross",
                    a.name,
                    b.name
                );
            }
        }
    }
}

#[test]
fn child_durations_sum_within_parent() {
    for seed in 0..SEEDS {
        let ctrl = drive(seed);
        let spans = ctrl.obs().expect("obs attached").spans.spans();
        for (i, parent) in spans.iter().enumerate() {
            let parent_ticks = parent.duration_ticks().expect("closed at idle");
            let child_sum: u64 = spans
                .iter()
                .filter(|s| s.parent.map(|p| p.0 as usize) == Some(i))
                .map(|s| s.duration_ticks().expect("closed at idle"))
                .sum();
            assert!(
                child_sum <= parent_ticks,
                "seed {seed}: children of span {i} ({}) total {child_sum} ticks > parent {parent_ticks}",
                parent.name
            );
        }
    }
}

#[test]
fn warm_memo_ledger_balances() {
    for seed in 0..SEEDS {
        let ctrl = drive(seed);
        let stats = ctrl.stats();
        assert_eq!(
            stats.warm_memo_lookups,
            stats.warm_memo_hits + stats.warm_memo_misses,
            "seed {seed}: CtrlStats memo ledger out of balance"
        );
        let metrics = &ctrl.obs().expect("obs attached").metrics;
        assert_eq!(
            metrics.counter_value("warm.memo_lookups", &[]),
            metrics.counter_value("warm.memo_hits", &[])
                + metrics.counter_value("warm.memo_misses", &[]),
            "seed {seed}: exported memo ledger out of balance"
        );
    }
}

#[test]
fn dumps_validate_against_the_schema() {
    for seed in 0..SEEDS {
        let ctrl = drive(seed);
        let obs = ctrl.obs().expect("obs attached");
        let trace = validate_obs_json(&obs.trace_json())
            .unwrap_or_else(|e| panic!("seed {seed}: trace dump invalid: {e}"));
        assert_eq!(trace.kind(), "trace");
        let metrics = validate_obs_json(&obs.metrics_json())
            .unwrap_or_else(|e| panic!("seed {seed}: metrics dump invalid: {e}"));
        assert_eq!(metrics.kind(), "metrics");
    }
}

//! Regression tests pinning the paper's worked examples, end to end
//! through the public API.

use flowplace::core::{tables, verify};
use flowplace::prelude::*;
use flowplace::topo::TopologyBuilder;

/// The Figure 3 instance: ingress l1, paths s1-s2-s3 and s1-s2-s4-s5,
/// policy {r11 PERMIT 1100, r12 DROP 11**, r13 DROP 0***}.
fn figure3(capacity: usize) -> (Instance, EntryPortId) {
    let mut b = TopologyBuilder::new();
    let s: Vec<SwitchId> = (1..=5)
        .map(|i| b.add_switch(format!("s{i}"), capacity))
        .collect();
    b.add_link(s[0], s[1]).unwrap();
    b.add_link(s[1], s[2]).unwrap();
    b.add_link(s[1], s[3]).unwrap();
    b.add_link(s[3], s[4]).unwrap();
    let l1 = b.add_entry_port("l1", s[0]).unwrap();
    let l2 = b.add_entry_port("l2", s[2]).unwrap();
    let l3 = b.add_entry_port("l3", s[4]).unwrap();
    let topo = b.build();
    let mut routes = RouteSet::new();
    routes.push(Route::new(l1, l2, vec![s[0], s[1], s[2]]));
    routes.push(Route::new(l1, l3, vec![s[0], s[1], s[3], s[4]]));
    let policy = Policy::from_ordered(vec![
        (Ternary::parse("1100").unwrap(), Action::Permit),
        (Ternary::parse("11**").unwrap(), Action::Drop),
        (Ternary::parse("0***").unwrap(), Action::Drop),
    ])
    .unwrap();
    (Instance::new(topo, routes, vec![(l1, policy)]).unwrap(), l1)
}

#[test]
fn figure3_loose_capacity_shares_everything() {
    let (instance, _) = figure3(10);
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p = outcome.placement.unwrap();
    assert_eq!(p.total_rules(), 3, "everything fits on the shared prefix");
    verify::verify_placement(&instance, &p, 256, 0).unwrap();
}

#[test]
fn figure3_capacity_one_replicates_r13_like_the_paper() {
    // The paper's drawn solution (capacity-constrained): the (r11, r12)
    // pair on one switch and r13 replicated on both branches. With
    // capacity 2 everything still fits in 3 entries via the shared
    // prefix; with per-switch capacity 2 but s1 and s2 capped at 1 the
    // pair is forced to one switch and r13 must replicate.
    let (instance, l1) = figure3(2);
    let mut topo = instance.topology().clone();
    topo.set_capacity(SwitchId(0), 0); // s1: no ACL slots at all
    topo.set_capacity(SwitchId(1), 2); // s2 takes exactly the pair
    topo.set_capacity(SwitchId(2), 1); // s3
    topo.set_capacity(SwitchId(3), 1); // s4
    topo.set_capacity(SwitchId(4), 1); // s5
    let instance = Instance::new(
        topo,
        instance.routes().clone(),
        instance.policies().map(|(l, q)| (l, q.clone())).collect(),
    )
    .unwrap();
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p = outcome.placement.expect("feasible");
    // r13 (RuleId(2)) must appear on both branches: once for the s3 path
    // and once for the s4/s5 path (it cannot fit on shared s1/s2 next to
    // the pair).
    let r13 = p.switches_of(l1, RuleId(2));
    assert!(r13.len() >= 2, "r13 replicated: {r13:?}");
    assert_eq!(p.total_rules(), 4, "pair + two copies of r13");
    verify::verify_placement(&instance, &p, 256, 1).unwrap();
}

#[test]
fn figure3_distance_weighted_places_at_ingress() {
    let (instance, l1) = figure3(10);
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::DistanceWeighted)
        .unwrap();
    let p = outcome.placement.unwrap();
    for r in 0..3 {
        assert_eq!(
            p.switches_of(l1, RuleId(r))
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![SwitchId(0)],
            "rule {r} sits on the ingress switch"
        );
    }
}

/// Figure 6: two routes with disjoint destination flows only need the
/// rules overlapping their flow.
#[test]
fn figure6_path_slicing_drops_irrelevant_rules() {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_switch("ingress", 10);
    let s1 = b.add_switch("red", 10);
    let s2 = b.add_switch("blue", 10);
    b.add_link(s0, s1).unwrap();
    b.add_link(s0, s2).unwrap();
    let l0 = b.add_entry_port("l0", s0).unwrap();
    let red = b.add_entry_port("red-host", s1).unwrap();
    let blue = b.add_entry_port("blue-host", s2).unwrap();
    let topo = b.build();
    let mut routes = RouteSet::new();
    // Red route carries dst=01 packets; blue carries dst=10.
    routes.push(Route::new(l0, red, vec![s0, s1]).with_flow(Ternary::parse("**01").unwrap()));
    routes.push(Route::new(l0, blue, vec![s0, s2]).with_flow(Ternary::parse("**10").unwrap()));
    // Rule 1 matches only red traffic, rule 2 only blue, rule 3 both.
    let policy = Policy::from_ordered(vec![
        (Ternary::parse("1*01").unwrap(), Action::Drop),
        (Ternary::parse("1*10").unwrap(), Action::Drop),
        (Ternary::parse("0***").unwrap(), Action::Drop),
    ])
    .unwrap();
    let instance = Instance::new(topo, routes, vec![(l0, policy)]).unwrap();
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p = outcome.placement.unwrap();
    // Optimal: rule 3 once at the shared ingress, rules 1 and 2 once
    // each (anywhere on their own route) = 3 entries; without slicing it
    // would need rule1+rule2 considered on both routes.
    assert_eq!(p.total_rules(), 3);
    verify::verify_placement(&instance, &p, 256, 2).unwrap();
}

/// §IV-A5: rules of different policies are isolated by tags inside a
/// shared switch — a packet entering at l1 never hits l0's rules.
#[test]
fn tag_isolation_between_policies() {
    let mut b = TopologyBuilder::new();
    let mid = b.add_switch("mid", 10);
    let a = b.add_switch("a", 10);
    let c = b.add_switch("c", 10);
    b.add_link(a, mid).unwrap();
    b.add_link(mid, c).unwrap();
    let l0 = b.add_entry_port("l0", a).unwrap();
    let l1 = b.add_entry_port("l1", c).unwrap();
    let topo = b.build();
    let mut routes = RouteSet::new();
    routes.push(Route::new(l0, l1, vec![a, mid, c]));
    routes.push(Route::new(l1, l0, vec![c, mid, a]));
    // l0 drops everything 1***; l1 permits everything (empty policy).
    let q0 = Policy::from_ordered(vec![(Ternary::parse("1***").unwrap(), Action::Drop)]).unwrap();
    let q1 = Policy::from_rules(vec![]).unwrap();
    let instance = Instance::new(topo, routes, vec![(l0, q0), (l1, q1)]).unwrap();
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p = outcome.placement.unwrap();
    let tables = tables::emit_tables(&instance, &p).unwrap();
    let pkt = Packet::from_bits(0b1010, 4);
    // l0's traffic is dropped...
    let r0 = instance.routes().route(RouteId(0));
    assert_eq!(verify::evaluate_route(&tables, r0, &pkt), Action::Drop);
    // ...but the same header entering at l1 passes (tag isolation).
    let r1 = instance.routes().route(RouteId(1));
    assert_eq!(verify::evaluate_route(&tables, r1, &pkt), Action::Permit);
}

/// The paper's tag allocator covers every policy with distinct VLANs.
#[test]
fn vlan_tags_are_distinct() {
    let (instance, _) = figure3(10);
    let tags = flowplace::core::tags::allocate_tags(&instance).unwrap();
    assert_eq!(tags.len(), 1);
    let mut topo = Topology::star(5);
    topo.set_uniform_capacity(10);
    let qs: Vec<(EntryPortId, Policy)> = (0..5)
        .map(|i| {
            (
                EntryPortId(i),
                Policy::from_ordered(vec![(Ternary::parse("1*").unwrap(), Action::Drop)]).unwrap(),
            )
        })
        .collect();
    let inst = Instance::new(topo, RouteSet::new(), qs).unwrap();
    let tags = flowplace::core::tags::allocate_tags(&inst).unwrap();
    let mut values: Vec<u16> = tags.values().map(|t| t.0).collect();
    values.sort_unstable();
    values.dedup();
    assert_eq!(values.len(), 5);
}

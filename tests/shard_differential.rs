//! Differential determinism harness for the sharded controller.
//!
//! The shard runtime's headline contract is *byte-identity*: for any
//! event stream, [`ShardedController`] at any shard count produces the
//! same placements, [`CtrlStats`], dataplane dump, virtual clock, and
//! obs dumps as the plain [`Controller`] — the partition and the
//! scoped verification sweep are pure accelerators, never observable.
//! This suite pins that over 32 randomized seeds × N ∈ {1, 2, 4, 8}
//! (cache tier and warm path enabled, fault events included), checks
//! the capacity arbiter's conservation invariants on every committed
//! epoch, and exercises the `--shards` CLI surface end to end.

use std::process::Command;

use flowplace::acl::{Action, Policy, Rule, RuleId, Ternary};
use flowplace::ctrl::{CacheConfig, Controller, CtrlOptions, Event, ShardSpec, ShardedController};
use flowplace::obs::Obs;
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 4;
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    let action = if rng.gen_bool(0.7) {
        Action::Drop
    } else {
        Action::Permit
    };
    Rule::new(Ternary::new(WIDTH, care, value), action, priority)
}

fn install(rng: &mut StdRng, ingress: usize, switches: Vec<usize>) -> Event {
    let egress = ingress + 4;
    let n = rng.gen_range(1..=4usize);
    let mut rules: Vec<Rule> = (0..n).map(|p| rand_rule(rng, p as u32 + 2)).collect();
    rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
    Event::InstallPolicy {
        ingress: EntryPortId(ingress),
        policy: Policy::from_rules(rules).expect("distinct priorities"),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

/// A randomized event stream over four tenants on `linear(4)`: rule
/// churn, reroutes, capacity changes, faults, snapshots — everything
/// the controller accepts, so both the atomic and the resilient commit
/// paths get exercised under sharding.
fn rand_events(rng: &mut StdRng) -> Vec<Event> {
    let mut events = vec![
        install(rng, 0, vec![0, 1]),
        install(rng, 1, vec![1, 2]),
        install(rng, 2, vec![2, 3]),
        install(rng, 3, vec![3, 2, 1, 0]),
    ];
    let mut priority = 10;
    for _ in 0..rng.gen_range(8..20usize) {
        priority += 1;
        let ingress = EntryPortId(rng.gen_range(0..4usize));
        let switch = SwitchId(rng.gen_range(0..4usize));
        events.push(match rng.gen_range(0..12u32) {
            0..=4 => Event::AddRule {
                ingress,
                rule: rand_rule(rng, priority),
            },
            5..=6 => Event::RemoveRule {
                ingress,
                rule: RuleId(rng.gen_range(0..4usize)),
            },
            7 => Event::CapacityChange {
                switch,
                capacity: rng.gen_range(4..16usize),
            },
            8 => Event::SwitchFail { switch },
            9 => Event::SwitchRecover { switch },
            10 => Event::Solve,
            _ => Event::Checkpoint,
        });
    }
    events
}

fn options() -> CtrlOptions {
    CtrlOptions {
        batch_size: 4,
        verify_packets: 4,
        // The satellites demand the differential hold with the cache
        // tier and the warm path enabled — both default-on here.
        cache: CacheConfig {
            enabled: true,
            capacity: 4,
            ..CacheConfig::default()
        },
        ..CtrlOptions::default()
    }
}

/// Every observable of a finished run, as comparable strings.
fn observables(ctrl: &Controller) -> [String; 6] {
    let obs = ctrl.obs().expect("obs attached");
    [
        format!("{:?}", ctrl.placement()),
        ctrl.stats().to_string(),
        ctrl.dataplane().dump(),
        format!("{}/{}", ctrl.epoch(), ctrl.virtual_time_ms()),
        obs.trace_json(),
        obs.metrics_json(),
    ]
}

/// The tentpole differential: 32 seeds × N ∈ {1, 2, 4, 8}, sharded ≡
/// unsharded on every observable surface, byte for byte.
#[test]
fn sharded_controller_is_byte_identical_over_32_seeds() {
    for seed in 0..32u64 {
        let events = rand_events(&mut StdRng::seed_from_u64(0x5AAD_0000 ^ seed));
        let mut topo = Topology::linear(4);
        topo.set_uniform_capacity(12);

        let mut plain = Controller::new(topo.clone(), options());
        plain.attach_obs(Obs::new());
        plain
            .replay(events.iter().cloned())
            .unwrap_or_else(|e| panic!("seed {seed}: baseline replay: {e}"));
        let want = observables(&plain);

        for shards in SHARD_COUNTS {
            let mut sharded =
                ShardedController::new(topo.clone(), options(), ShardSpec::new(shards));
            sharded.attach_obs(Obs::new());
            sharded.attach_shard_obs(Obs::new());
            sharded
                .replay(events.iter().cloned())
                .unwrap_or_else(|e| panic!("seed {seed} N={shards}: sharded replay: {e}"));
            let got = observables(sharded.inner());
            for (name, (w, g)) in [
                "placement",
                "stats",
                "dataplane",
                "clock",
                "trace",
                "metrics",
            ]
            .iter()
            .zip(want.iter().zip(got.iter()))
            {
                assert_eq!(w, g, "seed {seed} N={shards}: {name} diverged");
            }
            assert_eq!(
                sharded.coord_stats().overgrants,
                0,
                "seed {seed} N={shards}: arbiter overgranted"
            );
        }
    }
}

/// The capacity-accounting property: on every committed epoch, the
/// per-shard billable grants sum to exactly the unsharded per-switch
/// bill (cross-shard merged entries billed once), and the arbiter
/// never grants a switch beyond its capacity. Checked epoch by epoch,
/// not just at the end, over streams that include capacity shrinks
/// (where overgrant alarms are legitimate and the grant cap still
/// holds).
#[test]
fn arbiter_bills_exactly_the_unsharded_load_every_epoch() {
    for seed in 0..16u64 {
        let events = rand_events(&mut StdRng::seed_from_u64(0xB111_0000 ^ seed));
        for shards in [2u32, 4, 8] {
            let mut topo = Topology::linear(4);
            topo.set_uniform_capacity(12);
            let mut sharded = ShardedController::new(topo, options(), ShardSpec::new(shards));
            let mut epochs = 0u64;
            for event in &events {
                if sharded.inner().pending() >= sharded.inner().options().queue_capacity {
                    while sharded
                        .run_epoch()
                        .unwrap_or_else(|e| panic!("seed {seed} N={shards}: {e}"))
                        .is_some()
                    {}
                }
                sharded.submit(event.clone()).expect("queue has room");
                while sharded
                    .run_epoch()
                    .unwrap_or_else(|e| panic!("seed {seed} N={shards}: {e}"))
                    .is_some()
                {
                    epochs += 1;
                    let arbiter = sharded
                        .last_arbiter()
                        .expect("a committed epoch leaves a report");
                    let granted = arbiter.granted_per_switch();
                    let capacities = sharded.instance().topology().capacities();
                    for (s, (g, c)) in granted.iter().zip(capacities.iter()).enumerate() {
                        assert!(
                            g <= c,
                            "seed {seed} N={shards} epoch {}: switch s{s} granted {g} > capacity {c}",
                            arbiter.epoch
                        );
                    }
                    if arbiter.overgrants == 0 {
                        let bill = sharded.placement().per_switch_load(sharded.instance());
                        assert_eq!(
                            granted, bill,
                            "seed {seed} N={shards} epoch {}: grants != unsharded bill",
                            arbiter.epoch
                        );
                    }
                }
            }
            assert!(epochs > 0, "seed {seed} N={shards}: no epochs committed");
        }
    }
}

/// Explicit overrides co-exist with the hash partition and survive the
/// differential: pinning every tenant to one shard (maximal imbalance)
/// still replays byte-identically.
#[test]
fn pinned_partition_is_still_byte_identical() {
    let events = rand_events(&mut StdRng::seed_from_u64(0x9147));
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(12);

    let mut plain = Controller::new(topo.clone(), options());
    plain.attach_obs(Obs::new());
    plain.replay(events.iter().cloned()).expect("baseline");
    let want = observables(&plain);

    let mut spec = ShardSpec::new(4);
    for t in 0..4 {
        spec = spec.with_override(EntryPortId(t), 3);
    }
    let mut sharded = ShardedController::new(topo, options(), spec);
    sharded.attach_obs(Obs::new());
    sharded.replay(events.iter().cloned()).expect("sharded");
    assert_eq!(want, observables(sharded.inner()));
}

// ---------------------------------------------------------------------
// CLI surface
// ---------------------------------------------------------------------

fn cli(trace: &str, extra: &[&str]) -> std::process::Output {
    let path = std::env::temp_dir().join(format!(
        "flowplace-shard-diff-{}-{}.trace",
        std::process::id(),
        extra.join("_").replace([':', '=', ','], "-")
    ));
    std::fs::write(&path, trace).expect("trace written");
    let out = Command::new(env!("CARGO_BIN_EXE_flowplace"))
        .arg("ctrl")
        .arg("replay")
        .arg(&path)
        .args(extra)
        .output()
        .expect("binary runs");
    let _ = std::fs::remove_file(&path);
    out
}

const CLI_TRACE: &str = "\
install-policy l0 via l4:s0-s1 rules 11**:drop:2,****:permit:1
install-policy l1 via l5:s2-s3 rules 00**:drop:2,****:permit:1
add-rule l0 1010 drop 3
add-rule l1 0101 drop 3
remove-rule l0 r0
solve
";

/// `--shards N` output is the unsharded output plus an appended shard
/// summary — the byte-identity contract, observable from the CLI.
#[test]
fn cli_sharded_stdout_extends_unsharded_stdout() {
    let plain = cli(CLI_TRACE, &[]);
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );
    let plain_stdout = String::from_utf8(plain.stdout).expect("utf8");
    for shards in ["1", "2", "4", "8"] {
        let sharded = cli(CLI_TRACE, &["--shards", shards]);
        assert!(
            sharded.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&sharded.stderr)
        );
        let stdout = String::from_utf8(sharded.stdout).expect("utf8");
        assert!(
            stdout.starts_with(&plain_stdout),
            "--shards {shards}: sharded stdout must extend the unsharded bytes"
        );
        let summary = &stdout[plain_stdout.len()..];
        assert!(
            summary.starts_with(&format!("sharding: {shards} shards")),
            "--shards {shards}: summary missing, got {summary:?}"
        );
        assert!(summary.contains("0 overgrant alarms"), "{summary:?}");
    }
}

/// Bad `--shards` specs are rejected before any replay work, with the
/// offending token named (the `--cache` parse_spec convention).
#[test]
fn cli_shard_spec_errors_name_the_offending_token() {
    for (spec, needle) in [
        ("0", "shard count must be positive"),
        ("00", "shard count must be positive"),
        ("4294967296", "bad shard count \"4294967296\""),
        ("garbage", "bad shard count \"garbage\""),
        ("-3", "bad shard count \"-3\""),
        ("4:l0=9", "override shard out of range in \"l0=9\""),
        ("4:l0", "bad override \"l0\""),
    ] {
        let out = cli(CLI_TRACE, &["--shards", spec]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--shards {spec}: want usage-error exit"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--shards:") && stderr.contains(needle),
            "--shards {spec}: stderr {stderr:?} should contain {needle:?}"
        );
    }
}

//! End-to-end tests of the `flowplace` command-line binary.

use std::process::Command;

fn flowplace(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_flowplace"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_lists_commands() {
    let out = flowplace(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["place", "audit", "gen-policy"] {
        assert!(text.contains(cmd), "help mentions {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = flowplace(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_policy_audit_place_pipeline() {
    let dir = std::env::temp_dir().join(format!("flowplace-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let policy_path = dir.join("tenant.txt");
    let dot_path = dir.join("deps.dot");

    // Generate a policy file.
    let out = flowplace(&["gen-policy", "--rules", "8", "--seed", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(text.lines().count(), 8);
    assert!(text
        .lines()
        .all(|l| l.starts_with("permit") || l.starts_with("drop")));
    std::fs::write(&policy_path, &text).unwrap();

    // Audit it with a DOT export.
    let out = flowplace(&[
        "audit",
        policy_path.to_str().unwrap(),
        "--dot",
        dot_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("8 rules"));
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.starts_with("digraph"));

    // Place it on a small topology with verification.
    let out = flowplace(&[
        "place",
        "--topo",
        "linear:3",
        "--capacity",
        "10",
        "--ingresses",
        "1",
        "--paths",
        "1",
        "--policy-file",
        policy_path.to_str().unwrap(),
        "--verify",
        "--tables",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("status: optimal"));
    assert!(text.contains("verification passed"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn place_reports_infeasible_with_exit_code() {
    // An explicit policy with a reachable drop needs at least one TCAM
    // entry, so capacity 0 is infeasible regardless of RNG streams.
    let dir = std::env::temp_dir().join(format!("flowplace-cli-infeasible-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let policy_path = dir.join("deny.txt");
    std::fs::write(&policy_path, "drop   10** @ 2\npermit **** @ 1\n").unwrap();

    let out = flowplace(&[
        "place",
        "--topo",
        "linear:2",
        "--capacity",
        "0",
        "--ingresses",
        "1",
        "--paths",
        "1",
        "--policy-file",
        policy_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "infeasible exits 1");
    assert!(String::from_utf8_lossy(&out.stdout).contains("infeasible"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn place_exports_lp_model() {
    let dir = std::env::temp_dir().join(format!("flowplace-cli-lp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let lp_path = dir.join("model.lp");
    let out = flowplace(&[
        "place",
        "--topo",
        "leaf-spine:2,2,2",
        "--capacity",
        "20",
        "--ingresses",
        "2",
        "--rules",
        "5",
        "--export-lp",
        lp_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lp = std::fs::read_to_string(&lp_path).unwrap();
    assert!(lp.contains("Minimize"));
    assert!(lp.contains("Subject To"));
    assert!(lp.trim_end().ends_with("End"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sat_engine_flag() {
    let out = flowplace(&[
        "place",
        "--topo",
        "fat-tree:4",
        "--capacity",
        "30",
        "--ingresses",
        "2",
        "--rules",
        "6",
        "--engine",
        "sat",
        "--verify",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verification passed"));
}

#[test]
fn bad_flags_reported() {
    let out = flowplace(&["place", "--topo", "moebius:9"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topology"));
    let out = flowplace(&["place", "--capacity"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
    let out = flowplace(&["audit"]);
    assert!(!out.status.success());
}

//! Randomized property tests over the whole stack.
//!
//! Seeded-RNG generated small instances exercise the invariants the
//! paper's correctness argument rests on:
//!
//! * ternary algebra laws against exhaustive bit-vector enumeration;
//! * redundancy removal preserves first-match semantics;
//! * the MILP solver matches brute-force enumeration on tiny 0/1 models;
//! * the CDCL PB solver matches brute-force truth tables;
//! * any feasible placement (ILP or SAT engine, merging on or off)
//!   passes the golden-model verifier.
//!
//! Each test draws a fixed number of cases from a fixed-seed
//! [`StdRng`], so runs are deterministic; failure messages carry the
//! case number so a regression reproduces by construction.

use flowplace::acl::{redundancy, Action, CubeList, Packet, Policy, Ternary};
use flowplace::core::verify;
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 6;

fn rand_ternary(rng: &mut StdRng) -> Ternary {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    Ternary::new(WIDTH, care, value)
}

fn rand_action(rng: &mut StdRng) -> Action {
    if rng.gen_bool(0.5) {
        Action::Permit
    } else {
        Action::Drop
    }
}

fn rand_policy(rng: &mut StdRng, max_rules: usize) -> Policy {
    let n = rng.gen_range(0..=max_rules);
    let specs: Vec<(Ternary, Action)> = (0..n)
        .map(|_| (rand_ternary(rng), rand_action(rng)))
        .collect();
    Policy::from_ordered(specs).expect("ordered priorities are strict")
}

fn all_packets() -> impl Iterator<Item = Packet> {
    (0u128..(1 << WIDTH)).map(|b| Packet::from_bits(b, WIDTH))
}

#[test]
fn ternary_intersection_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..64 {
        let a = rand_ternary(&mut rng);
        let b = rand_ternary(&mut rng);
        for p in all_packets() {
            let in_both = a.matches(&p) && b.matches(&p);
            match a.intersection(&b) {
                None => assert!(!in_both, "case {case}: missed intersection at {p}"),
                Some(i) => assert_eq!(
                    i.matches(&p),
                    in_both,
                    "case {case}: {a} ∩ {b} wrong at {p}"
                ),
            }
        }
    }
}

#[test]
fn ternary_subsumption_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for case in 0..64 {
        let a = rand_ternary(&mut rng);
        let b = rand_ternary(&mut rng);
        let claimed = a.subsumes(&b);
        let actual = all_packets().all(|p| !b.matches(&p) || a.matches(&p));
        assert_eq!(claimed, actual, "case {case}: {a} subsumes {b}");
    }
}

#[test]
fn cubelist_subtract_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for case in 0..64 {
        let base = rand_ternary(&mut rng);
        let nsubs = rng.gen_range(0..5usize);
        let subs: Vec<Ternary> = (0..nsubs).map(|_| rand_ternary(&mut rng)).collect();
        let mut list = CubeList::from_cube(base);
        for s in &subs {
            list.subtract(s);
        }
        for p in all_packets() {
            let expected = base.matches(&p) && subs.iter().all(|s| !s.matches(&p));
            assert_eq!(
                list.contains_packet(&p),
                expected,
                "case {case}: packet {p}"
            );
        }
        // Cubes remain pairwise disjoint.
        let cubes = list.cubes();
        for (i, a) in cubes.iter().enumerate() {
            for b in &cubes[i + 1..] {
                assert!(!a.intersects(b), "case {case}: overlapping cubes");
            }
        }
    }
}

#[test]
fn redundancy_removal_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(0xDEED);
    for case in 0..64 {
        let policy = rand_policy(&mut rng, 10);
        let report = redundancy::remove_redundant(&policy);
        assert!(report.policy.len() <= policy.len());
        for p in all_packets() {
            assert_eq!(
                policy.evaluate(&p),
                report.policy.evaluate(&p),
                "case {case}: packet {p}"
            );
        }
    }
}

#[test]
fn redundancy_removal_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for case in 0..64 {
        let policy = rand_policy(&mut rng, 10);
        let once = redundancy::remove_redundant(&policy).policy;
        let twice = redundancy::remove_redundant(&once);
        assert_eq!(
            twice.removed_count(),
            0,
            "case {case}: second pass found more redundancy"
        );
    }
}

#[test]
fn milp_matches_brute_force() {
    use flowplace::milp::{solve_mip, Cmp, MipOptions, Model, Sense};
    let mut rng = StdRng::seed_from_u64(0x111);
    for case in 0..48 {
        let n = rng.gen_range(4..=8usize);
        let costs: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..6)).collect();
        let ncovers = rng.gen_range(1..5usize);
        let covers: Vec<Vec<usize>> = (0..ncovers)
            .map(|_| {
                let len = rng.gen_range(1..4usize);
                (0..len).map(|_| rng.gen_range(0..8usize)).collect()
            })
            .collect();
        let cap = rng.gen_range(1u32..8);

        let mut model = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("x{i}"))).collect();
        for (v, c) in vars.iter().zip(&costs) {
            model.set_objective(*v, *c as f64);
        }
        for (r, cover) in covers.iter().enumerate() {
            let terms: Vec<_> = cover
                .iter()
                .filter(|&&i| i < n)
                .map(|&i| (vars[i], 1.0))
                .collect();
            if !terms.is_empty() {
                model.add_constraint(format!("c{r}"), terms, Cmp::Ge, 1.0);
            }
        }
        model.add_constraint(
            "cap",
            vars.iter().map(|&v| (v, 1.0)).collect(),
            Cmp::Le,
            cap as f64,
        );

        let out = solve_mip(&model, &MipOptions::default());

        // Brute force.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let vals: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            if model.check_feasible(&vals, 1e-9).is_ok() {
                let obj = model.objective_value(&vals);
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        match best {
            None => assert!(
                out.is_infeasible(),
                "case {case}: solver found {:?}",
                out.status
            ),
            Some(b) => {
                let sol = out
                    .solution()
                    .unwrap_or_else(|| panic!("case {case}: solver missed a feasible point"));
                assert!(
                    (sol.objective - b).abs() < 1e-6,
                    "case {case}: solver {} vs brute force {}",
                    sol.objective,
                    b
                );
            }
        }
    }
}

#[test]
fn pbsat_matches_brute_force() {
    use flowplace::pbsat::{Lit, Solver, Var};
    let mut rng = StdRng::seed_from_u64(0x222);
    for case in 0..48 {
        let nclauses = rng.gen_range(1..8usize);
        let clauses: Vec<Vec<(u32, bool)>> = (0..nclauses)
            .map(|_| {
                let len = rng.gen_range(1..4usize);
                (0..len)
                    .map(|_| (rng.gen_range(0u32..6), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let k = rng.gen_range(0u64..4);

        let nv = 6u32;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
        let mut ok = true;
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| {
                    if pos {
                        Lit::positive(vars[v as usize])
                    } else {
                        Lit::negative(vars[v as usize])
                    }
                })
                .collect();
            ok &= s.add_clause(&lits);
        }
        let card: Vec<Lit> = vars.iter().take(4).map(|&v| Lit::positive(v)).collect();
        ok &= s.add_at_most_k(&card, k);
        let got = ok && s.solve().is_sat();

        let mut expected = false;
        'outer: for mask in 0u32..(1 << nv) {
            let val = |v: u32, pos: bool| (((mask >> v) & 1) == 1) == pos;
            for clause in &clauses {
                if !clause.iter().any(|&(v, pos)| val(v, pos)) {
                    continue 'outer;
                }
            }
            if (0..4).filter(|&v| val(v, true)).count() as u64 > k {
                continue;
            }
            expected = true;
            break;
        }
        assert_eq!(got, expected, "case {case}");
    }
}

/// Builds a random small placement instance on a star topology.
fn rand_instance(rng: &mut StdRng) -> Instance {
    let npolicies = rng.gen_range(2..=3usize);
    let policies: Vec<Policy> = (0..npolicies).map(|_| rand_policy(rng, 6)).collect();
    let capacity = rng.gen_range(2..=12usize);
    let mut topo = Topology::star(policies.len() + 1);
    topo.set_uniform_capacity(capacity);
    let mut routes = RouteSet::new();
    let egress = EntryPortId(policies.len());
    let egress_switch = topo.entry_port(egress).switch;
    for (i, _) in policies.iter().enumerate() {
        let ingress_switch = topo.entry_port(EntryPortId(i)).switch;
        routes.push(Route::new(
            EntryPortId(i),
            egress,
            vec![ingress_switch, SwitchId(0), egress_switch],
        ));
    }
    let attached: Vec<(EntryPortId, Policy)> = policies
        .into_iter()
        .enumerate()
        .map(|(i, p)| (EntryPortId(i), p))
        .collect();
    Instance::new(topo, routes, attached).expect("valid instance")
}

#[test]
fn any_feasible_ilp_placement_verifies() {
    let mut rng = StdRng::seed_from_u64(0x333);
    for case in 0..32 {
        let instance = rand_instance(&mut rng);
        let placer = RulePlacer::new(PlacementOptions::default());
        let outcome = placer.place(&instance, Objective::TotalRules).unwrap();
        if let Some(p) = outcome.placement {
            // Exhaustive: a pass is a proof over the full packet space.
            let result = verify::verify_placement_exhaustive(&instance, &p);
            assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
        }
    }
}

#[test]
fn any_feasible_sat_placement_verifies() {
    let mut rng = StdRng::seed_from_u64(0x444);
    for case in 0..32 {
        let instance = rand_instance(&mut rng);
        let placer = RulePlacer::new(PlacementOptions {
            engine: PlacerEngine::Sat,
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&instance, Objective::TotalRules).unwrap();
        if let Some(p) = outcome.placement {
            let result = verify::verify_placement(&instance, &p, 64, 98);
            assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
        }
    }
}

#[test]
fn merged_placement_verifies_and_never_costs_more() {
    let mut rng = StdRng::seed_from_u64(0x555);
    for case in 0..32 {
        let instance = rand_instance(&mut rng);
        let plain = RulePlacer::new(PlacementOptions::default())
            .place(&instance, Objective::TotalRules)
            .unwrap();
        let merged = RulePlacer::new(PlacementOptions {
            merging: true,
            ..PlacementOptions::default()
        })
        .place(&instance, Objective::TotalRules)
        .unwrap();
        match (plain.placement, merged.placement) {
            (Some(p0), Some(p1)) => {
                assert!(p1.total_rules() <= p0.total_rules(), "case {case}");
                let result = verify::verify_placement(&instance, &p1, 64, 97);
                assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
            }
            (None, Some(p1)) => {
                // Merging can rescue infeasible instances, never the
                // other way around.
                let result = verify::verify_placement(&instance, &p1, 64, 96);
                assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
            }
            (Some(_), None) => panic!("case {case}: merging lost feasibility"),
            (None, None) => {}
        }
    }
}

#[test]
fn greedy_placement_verifies_when_it_succeeds() {
    let mut rng = StdRng::seed_from_u64(0x666);
    for case in 0..32 {
        let instance = rand_instance(&mut rng);
        if let Some(p) = flowplace::core::greedy::greedy_place(&instance) {
            let result = verify::verify_placement(&instance, &p, 64, 95);
            assert!(result.is_ok(), "case {case}: violation: {:?}", result.err());
            // Greedy success implies the exact engines also find solutions.
            let ilp = RulePlacer::new(PlacementOptions::default())
                .place(&instance, Objective::TotalRules)
                .unwrap();
            assert!(
                ilp.placement.is_some(),
                "case {case}: ILP missed a greedy-feasible instance"
            );
            if let Some(opt) = ilp.placement {
                assert!(
                    opt.total_rules() <= p.total_rules(),
                    "case {case}: optimal exceeds greedy: {} > {}",
                    opt.total_rules(),
                    p.total_rules()
                );
            }
        }
    }
}

#[test]
fn port_range_expansion_covers_exactly() {
    use flowplace::acl::fivetuple::{FiveTuple, Ports, Prefix, Protocol};
    let mut rng = StdRng::seed_from_u64(0x777);
    for case in 0..64 {
        let lo = rng.gen_range(0u32..=u16::MAX as u32) as u16;
        let span = rng.gen_range(0u32..1000) as u16;
        let hi = lo.saturating_add(span);
        let spec = FiveTuple {
            src: Prefix::any(),
            dst: Prefix::any(),
            src_ports: Ports::Any,
            dst_ports: Ports::Range(lo, hi),
            protocol: Protocol::Any,
        };
        let cubes = spec.to_ternaries();
        // Sample the boundary and a few interior/exterior ports.
        let mut probes = vec![lo, hi, lo.saturating_sub(1), hi.saturating_add(1)];
        probes.push(lo / 2);
        probes.push(hi.saturating_add(1000));
        for port in probes {
            let bits = FiveTuple::pack_concrete(
                std::net::Ipv4Addr::new(1, 2, 3, 4),
                std::net::Ipv4Addr::new(5, 6, 7, 8),
                9,
                port,
                6,
            );
            let pkt = Packet::from_bits(bits, 104);
            let matched = cubes.iter().filter(|c| c.matches(&pkt)).count();
            let expected = usize::from(port >= lo && port <= hi);
            assert_eq!(matched, expected, "case {case}: port {port}");
        }
    }
}

#[test]
fn policy_text_round_trips() {
    use flowplace::acl::textfmt;
    let mut rng = StdRng::seed_from_u64(0x888);
    for case in 0..64 {
        let policy = rand_policy(&mut rng, 8);
        let text = textfmt::format_policy(&policy);
        let reparsed = textfmt::parse_policy(&text).unwrap();
        assert_eq!(&policy, &reparsed, "case {case}");
    }
}

#[test]
fn ecmp_paths_are_shortest_and_distinct() {
    use flowplace::routing::kshortest;
    let mut rng = StdRng::seed_from_u64(0x999);
    let topo = Topology::fat_tree(4);
    for case in 0..64 {
        let src = rng.gen_range(0usize..16);
        let dst = rng.gen_range(0usize..16);
        if src == dst {
            continue;
        }
        let paths = kshortest::all_shortest_paths(&topo, EntryPortId(src), EntryPortId(dst), 64);
        assert!(!paths.is_empty(), "case {case}");
        let src_sw = topo.entry_port(EntryPortId(src)).switch;
        let dst_sw = topo.entry_port(EntryPortId(dst)).switch;
        let dist = topo.distances_from(src_sw);
        let mut sigs = Vec::new();
        for p in &paths {
            assert_eq!(
                p.switches.len(),
                dist[dst_sw.0] + 1,
                "case {case}: length minimal"
            );
            assert_eq!(*p.switches.first().unwrap(), src_sw);
            assert_eq!(*p.switches.last().unwrap(), dst_sw);
            for w in p.switches.windows(2) {
                assert!(topo.neighbors(w[0]).contains(&w[1]), "case {case}");
            }
            sigs.push(p.switches.clone());
        }
        sigs.sort();
        sigs.dedup();
        assert_eq!(
            sigs.len(),
            paths.len(),
            "case {case}: paths pairwise distinct"
        );
    }
}

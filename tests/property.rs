//! Property-based tests over the whole stack.
//!
//! Strategy-generated small instances exercise the invariants the paper's
//! correctness argument rests on:
//!
//! * ternary algebra laws against exhaustive bit-vector enumeration;
//! * redundancy removal preserves first-match semantics;
//! * the MILP solver matches brute-force enumeration on tiny 0/1 models;
//! * the CDCL PB solver matches brute-force truth tables;
//! * any feasible placement (ILP or SAT engine, merging on or off)
//!   passes the golden-model verifier.

use proptest::prelude::*;

use flowplace::acl::{redundancy, Action, CubeList, Packet, Policy, Ternary};
use flowplace::core::verify;
use flowplace::prelude::*;

const WIDTH: u32 = 6;

fn ternary_strategy() -> impl Strategy<Value = Ternary> {
    // Generate (care, value) pairs at WIDTH bits.
    (0u128..(1 << WIDTH), 0u128..(1 << WIDTH))
        .prop_map(|(care, value)| Ternary::new(WIDTH, care, value))
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![Just(Action::Permit), Just(Action::Drop)]
}

fn policy_strategy(max_rules: usize) -> impl Strategy<Value = Policy> {
    prop::collection::vec((ternary_strategy(), action_strategy()), 0..=max_rules)
        .prop_map(|specs| Policy::from_ordered(specs).expect("ordered priorities are strict"))
}

fn all_packets() -> impl Iterator<Item = Packet> {
    (0u128..(1 << WIDTH)).map(|b| Packet::from_bits(b, WIDTH))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ternary_intersection_is_exact(a in ternary_strategy(), b in ternary_strategy()) {
        for p in all_packets() {
            let in_both = a.matches(&p) && b.matches(&p);
            match a.intersection(&b) {
                None => prop_assert!(!in_both),
                Some(i) => prop_assert_eq!(i.matches(&p), in_both),
            }
        }
    }

    #[test]
    fn ternary_subsumption_is_exact(a in ternary_strategy(), b in ternary_strategy()) {
        let claimed = a.subsumes(&b);
        let actual = all_packets().all(|p| !b.matches(&p) || a.matches(&p));
        prop_assert_eq!(claimed, actual);
    }

    #[test]
    fn cubelist_subtract_is_exact(
        base in ternary_strategy(),
        subs in prop::collection::vec(ternary_strategy(), 0..5),
    ) {
        let mut list = CubeList::from_cube(base);
        for s in &subs {
            list.subtract(s);
        }
        for p in all_packets() {
            let expected = base.matches(&p) && subs.iter().all(|s| !s.matches(&p));
            prop_assert_eq!(list.contains_packet(&p), expected, "packet {}", p);
        }
        // Cubes remain pairwise disjoint.
        let cubes = list.cubes();
        for (i, a) in cubes.iter().enumerate() {
            for b in &cubes[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn redundancy_removal_preserves_semantics(policy in policy_strategy(10)) {
        let report = redundancy::remove_redundant(&policy);
        prop_assert!(report.policy.len() <= policy.len());
        for p in all_packets() {
            prop_assert_eq!(policy.evaluate(&p), report.policy.evaluate(&p), "packet {}", p);
        }
    }

    #[test]
    fn redundancy_removal_is_idempotent(policy in policy_strategy(10)) {
        let once = redundancy::remove_redundant(&policy).policy;
        let twice = redundancy::remove_redundant(&once);
        prop_assert_eq!(twice.removed_count(), 0, "second pass found more redundancy");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn milp_matches_brute_force(
        costs in prop::collection::vec(1u32..6, 4..=8),
        covers in prop::collection::vec(
            prop::collection::vec(0usize..8, 1..4), 1..5),
        cap in 1u32..8,
    ) {
        use flowplace::milp::{solve_mip, Cmp, MipOptions, Model, Sense};
        let n = costs.len();
        let mut model = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("x{i}"))).collect();
        for (v, c) in vars.iter().zip(&costs) {
            model.set_objective(*v, *c as f64);
        }
        for (r, cover) in covers.iter().enumerate() {
            let terms: Vec<_> = cover.iter().filter(|&&i| i < n).map(|&i| (vars[i], 1.0)).collect();
            if !terms.is_empty() {
                model.add_constraint(format!("c{r}"), terms, Cmp::Ge, 1.0);
            }
        }
        model.add_constraint("cap", vars.iter().map(|&v| (v, 1.0)).collect(), Cmp::Le, cap as f64);

        let out = solve_mip(&model, &MipOptions::default());

        // Brute force.
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let vals: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
            if model.check_feasible(&vals, 1e-9).is_ok() {
                let obj = model.objective_value(&vals);
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
        match best {
            None => prop_assert!(out.is_infeasible(), "solver found {:?}", out.status),
            Some(b) => {
                let sol = out.solution().expect("solver missed a feasible point");
                prop_assert!((sol.objective - b).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, b);
            }
        }
    }

    #[test]
    fn pbsat_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0u32..6, prop::bool::ANY), 1..4), 1..8),
        k in 0u64..4,
    ) {
        use flowplace::pbsat::{Lit, Solver, Var};
        let nv = 6u32;
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nv).map(|_| s.new_var()).collect();
        let mut ok = true;
        for clause in &clauses {
            let lits: Vec<Lit> = clause.iter().map(|&(v, pos)| {
                if pos { Lit::positive(vars[v as usize]) } else { Lit::negative(vars[v as usize]) }
            }).collect();
            ok &= s.add_clause(&lits);
        }
        let card: Vec<Lit> = vars.iter().take(4).map(|&v| Lit::positive(v)).collect();
        ok &= s.add_at_most_k(&card, k);
        let got = ok && s.solve().is_sat();

        let mut expected = false;
        'outer: for mask in 0u32..(1 << nv) {
            let val = |v: u32, pos: bool| (((mask >> v) & 1) == 1) == pos;
            for clause in &clauses {
                if !clause.iter().any(|&(v, pos)| val(v, pos)) {
                    continue 'outer;
                }
            }
            if (0..4).filter(|&v| val(v, true)).count() as u64 > k {
                continue;
            }
            expected = true;
            break;
        }
        prop_assert_eq!(got, expected);
    }
}

/// Builds a random small placement instance on a star topology.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec(policy_strategy(6), 2..=3),
        2usize..=12, // capacity
    )
        .prop_map(|(policies, capacity)| {
            let mut topo = Topology::star(policies.len() + 1);
            topo.set_uniform_capacity(capacity);
            let mut routes = RouteSet::new();
            let egress = EntryPortId(policies.len());
            let egress_switch = topo.entry_port(egress).switch;
            for (i, _) in policies.iter().enumerate() {
                let ingress_switch = topo.entry_port(EntryPortId(i)).switch;
                routes.push(Route::new(
                    EntryPortId(i),
                    egress,
                    vec![ingress_switch, SwitchId(0), egress_switch],
                ));
            }
            let attached: Vec<(EntryPortId, Policy)> = policies
                .into_iter()
                .enumerate()
                .map(|(i, p)| (EntryPortId(i), p))
                .collect();
            Instance::new(topo, routes, attached).expect("valid instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_feasible_ilp_placement_verifies(instance in instance_strategy()) {
        let placer = RulePlacer::new(PlacementOptions::default());
        let outcome = placer.place(&instance, Objective::TotalRules).unwrap();
        if let Some(p) = outcome.placement {
            // Exhaustive: a pass is a proof over the full packet space.
            let result = verify::verify_placement_exhaustive(&instance, &p);
            prop_assert!(result.is_ok(), "violation: {:?}", result.err());
        }
    }

    #[test]
    fn any_feasible_sat_placement_verifies(instance in instance_strategy()) {
        let placer = RulePlacer::new(PlacementOptions {
            engine: PlacerEngine::Sat,
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&instance, Objective::TotalRules).unwrap();
        if let Some(p) = outcome.placement {
            let result = verify::verify_placement(&instance, &p, 64, 98);
            prop_assert!(result.is_ok(), "violation: {:?}", result.err());
        }
    }

    #[test]
    fn merged_placement_verifies_and_never_costs_more(instance in instance_strategy()) {
        let plain = RulePlacer::new(PlacementOptions::default())
            .place(&instance, Objective::TotalRules).unwrap();
        let merged = RulePlacer::new(PlacementOptions {
            merging: true,
            ..PlacementOptions::default()
        }).place(&instance, Objective::TotalRules).unwrap();
        match (plain.placement, merged.placement) {
            (Some(p0), Some(p1)) => {
                prop_assert!(p1.total_rules() <= p0.total_rules());
                let result = verify::verify_placement(&instance, &p1, 64, 97);
                prop_assert!(result.is_ok(), "violation: {:?}", result.err());
            }
            (None, Some(p1)) => {
                // Merging can rescue infeasible instances, never the
                // other way around.
                let result = verify::verify_placement(&instance, &p1, 64, 96);
                prop_assert!(result.is_ok(), "violation: {:?}", result.err());
            }
            (Some(_), None) => prop_assert!(false, "merging lost feasibility"),
            (None, None) => {}
        }
    }

    #[test]
    fn greedy_placement_verifies_when_it_succeeds(instance in instance_strategy()) {
        if let Some(p) = flowplace::core::greedy::greedy_place(&instance) {
            let result = verify::verify_placement(&instance, &p, 64, 95);
            prop_assert!(result.is_ok(), "violation: {:?}", result.err());
            // Greedy success implies the exact engines also find solutions.
            let ilp = RulePlacer::new(PlacementOptions::default())
                .place(&instance, Objective::TotalRules).unwrap();
            prop_assert!(ilp.placement.is_some(), "ILP missed a greedy-feasible instance");
            if let Some(opt) = ilp.placement {
                prop_assert!(opt.total_rules() <= p.total_rules(),
                    "optimal exceeds greedy: {} > {}", opt.total_rules(), p.total_rules());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn port_range_expansion_covers_exactly(lo in 0u16..=u16::MAX, span in 0u16..1000) {
        use flowplace::acl::fivetuple::{FiveTuple, Ports, Prefix, Protocol};
        let hi = lo.saturating_add(span);
        let spec = FiveTuple {
            src: Prefix::any(),
            dst: Prefix::any(),
            src_ports: Ports::Any,
            dst_ports: Ports::Range(lo, hi),
            protocol: Protocol::Any,
        };
        let cubes = spec.to_ternaries();
        // Sample the boundary and a few interior/exterior ports.
        let mut probes = vec![lo, hi, lo.saturating_sub(1), hi.saturating_add(1)];
        probes.push(lo / 2);
        probes.push(hi.saturating_add(1000));
        for port in probes {
            let bits = FiveTuple::pack_concrete(
                std::net::Ipv4Addr::new(1, 2, 3, 4),
                std::net::Ipv4Addr::new(5, 6, 7, 8),
                9,
                port,
                6,
            );
            let pkt = Packet::from_bits(bits, 104);
            let matched = cubes.iter().filter(|c| c.matches(&pkt)).count();
            let expected = usize::from(port >= lo && port <= hi);
            prop_assert_eq!(matched, expected, "port {}", port);
        }
    }

    #[test]
    fn policy_text_round_trips(policy in policy_strategy(8)) {
        use flowplace::acl::textfmt;
        let text = textfmt::format_policy(&policy);
        let reparsed = textfmt::parse_policy(&text).unwrap();
        prop_assert_eq!(&policy, &reparsed);
    }

    #[test]
    fn ecmp_paths_are_shortest_and_distinct(
        src in 0usize..16,
        dst in 0usize..16,
    ) {
        prop_assume!(src != dst);
        use flowplace::routing::kshortest;
        let topo = Topology::fat_tree(4);
        let paths = kshortest::all_shortest_paths(
            &topo, EntryPortId(src), EntryPortId(dst), 64);
        prop_assert!(!paths.is_empty());
        let src_sw = topo.entry_port(EntryPortId(src)).switch;
        let dst_sw = topo.entry_port(EntryPortId(dst)).switch;
        let dist = topo.distances_from(src_sw);
        let mut sigs = Vec::new();
        for p in &paths {
            prop_assert_eq!(p.switches.len(), dist[dst_sw.0] + 1, "length minimal");
            prop_assert_eq!(*p.switches.first().unwrap(), src_sw);
            prop_assert_eq!(*p.switches.last().unwrap(), dst_sw);
            for w in p.switches.windows(2) {
                prop_assert!(topo.neighbors(w[0]).contains(&w[1]));
            }
            sigs.push(p.switches.clone());
        }
        sigs.sort();
        sigs.dedup();
        prop_assert_eq!(sigs.len(), paths.len(), "paths pairwise distinct");
    }
}

//! Cross-checks between the substrate solvers: the LP relaxation bounds
//! the MIP, the MIP agrees with the PB-SAT solver on feasibility of
//! 0/1 models, and presolve preserves solutions.

use flowplace::milp::{
    presolve, solve_lp, solve_mip, Cmp, LpOutcome, MipOptions, Model, Sense, VarId,
};
use flowplace::pbsat::{Lit, SatResult, Solver};
use flowplace_rng::{Rng, StdRng};

/// Builds a random covering/packing 0/1 model. Returns the model.
fn random_model(seed: u64, n: usize, covers: usize) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<VarId> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    for v in &vars {
        m.set_objective(*v, rng.gen_range(1..5u32) as f64);
    }
    for r in 0..covers {
        let k = rng.gen_range(2..5usize).min(n);
        let mut terms = Vec::new();
        for _ in 0..k {
            terms.push((vars[rng.gen_range(0..n)], 1.0));
        }
        m.add_constraint(format!("c{r}"), terms, Cmp::Ge, 1.0);
    }
    let cap = rng.gen_range(n / 2..n + 1) as f64;
    m.add_constraint(
        "cap",
        vars.iter().map(|&v| (v, 1.0)).collect(),
        Cmp::Le,
        cap,
    );
    m
}

/// Mirrors a 0/1 model with unit/integer coefficients into the PB solver.
/// Only supports the coefficient patterns `random_model` produces.
fn to_pbsat(m: &Model) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..m.num_vars()).map(|_| s.new_var()).collect();
    for c in m.constraints() {
        match c.cmp {
            Cmp::Ge => {
                // Σ aᵢxᵢ ≥ r  ⇔  Σ aᵢ·¬xᵢ ≤ Σaᵢ − r.
                let total: f64 = c.terms.iter().map(|(_, a)| a).sum();
                let terms: Vec<(u64, Lit)> = c
                    .terms
                    .iter()
                    .map(|(v, a)| (*a as u64, Lit::negative(vars[v.0])))
                    .collect();
                s.add_pb_le(&terms, (total - c.rhs) as u64);
            }
            Cmp::Le => {
                let terms: Vec<(u64, Lit)> = c
                    .terms
                    .iter()
                    .map(|(v, a)| (*a as u64, Lit::positive(vars[v.0])))
                    .collect();
                s.add_pb_le(&terms, c.rhs as u64);
            }
            Cmp::Eq => unreachable!("random_model emits no equalities"),
        }
    }
    s
}

#[test]
fn lp_relaxation_bounds_mip_from_below() {
    for seed in 0..20 {
        let m = random_model(seed, 12, 8);
        let lp = solve_lp(&m);
        let mip = solve_mip(&m, &MipOptions::default());
        match (lp, mip.solution()) {
            (LpOutcome::Optimal(lp), Some(int)) => {
                assert!(
                    lp.objective <= int.objective + 1e-6,
                    "seed {seed}: LP {} > MIP {}",
                    lp.objective,
                    int.objective
                );
            }
            (LpOutcome::Infeasible, sol) => {
                assert!(sol.is_none(), "seed {seed}: LP infeasible but MIP solved");
            }
            (LpOutcome::Optimal(_), None) => {} // LP feasible, integers not
            (other, _) => panic!("seed {seed}: unexpected LP outcome {:?}", other.status()),
        }
    }
}

#[test]
fn mip_and_pbsat_agree_on_feasibility() {
    for seed in 20..45 {
        let m = random_model(seed, 10, 7);
        let mip = solve_mip(&m, &MipOptions::default());
        let mut sat = to_pbsat(&m);
        let sat_result = sat.solve();
        assert_eq!(
            mip.solution().is_some(),
            sat_result.is_sat(),
            "seed {seed}: MIP {:?} vs SAT {:?}",
            mip.status,
            sat_result.is_sat()
        );
        // When SAT, the SAT model is feasible for the MILP model too.
        if let SatResult::Sat(model) = sat_result {
            let values: Vec<f64> = model
                .values()
                .iter()
                .map(|&b| if b { 1.0 } else { 0.0 })
                .collect();
            assert!(m.check_feasible(&values, 1e-9).is_ok(), "seed {seed}");
        }
    }
}

#[test]
fn presolve_preserves_optimum() {
    for seed in 45..60 {
        let mut m = random_model(seed, 10, 6);
        // Add redundant structure for presolve to chew on.
        let v0 = VarId(0);
        m.add_constraint("dup1", vec![(v0, 1.0), (VarId(1), 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("dup2", vec![(v0, 1.0), (VarId(1), 1.0)], Cmp::Ge, 1.0);
        m.add_constraint("single", vec![(v0, 1.0)], Cmp::Le, 1.0);
        m.add_constraint("empty_ok", vec![], Cmp::Le, 5.0);
        let p = presolve(&m);
        assert!(!p.infeasible, "seed {seed}");
        assert!(p.rows_removed >= 2, "seed {seed}");
        let a = solve_mip(&m, &MipOptions::default());
        let b = solve_mip(&p.model, &MipOptions::default());
        match (a.solution(), b.solution()) {
            (Some(x), Some(y)) => {
                assert!(
                    (x.objective - y.objective).abs() < 1e-6,
                    "seed {seed}: {} vs {}",
                    x.objective,
                    y.objective
                )
            }
            (None, None) => {}
            other => panic!("seed {seed}: presolve changed feasibility: {other:?}"),
        }
    }
}

#[test]
fn mip_solution_always_model_feasible() {
    for seed in 60..80 {
        let m = random_model(seed, 14, 10);
        let out = solve_mip(&m, &MipOptions::default());
        if let Some(sol) = out.solution() {
            m.check_feasible(&sol.values, 1e-6)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

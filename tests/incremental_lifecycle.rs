//! A datacenter lifecycle scenario: initial deployment, then a chain of
//! incremental updates (tenants joining, reroutes, urgent rules), with
//! golden-model verification and capacity accounting after every step —
//! the §IV-E workflow end to end.

use std::time::Duration;

use flowplace::classbench::{Generator, Profile};
use flowplace::core::{incremental, verify};
use flowplace::milp::MipOptions;
use flowplace::prelude::*;
use flowplace::routing::shortest;
use flowplace_rng::StdRng;

fn options() -> PlacementOptions {
    PlacementOptions {
        greedy_warm_start: true,
        mip: MipOptions {
            time_limit: Some(Duration::from_secs(20)),
            ..MipOptions::default()
        },
        ..PlacementOptions::default()
    }
}

fn assert_capacity_respected(instance: &Instance, placement: &Placement) {
    let load = placement.per_switch_load(instance);
    for (i, l) in load.iter().enumerate() {
        assert!(
            *l <= instance.topology().capacity(SwitchId(i)),
            "switch {i} over capacity: {} > {}",
            l,
            instance.topology().capacity(SwitchId(i))
        );
    }
}

#[test]
fn lifecycle_with_rolling_updates() {
    let mut topo = Topology::fat_tree(4);
    topo.set_uniform_capacity(60);
    let generator = Generator::new(Profile::Acl, 16).with_seed(5);
    let mut rng = StdRng::seed_from_u64(55);

    // Day 0: four tenants.
    let mut routes = RouteSet::new();
    let mut policies = Vec::new();
    for i in 0..4usize {
        let ingress = EntryPortId(i);
        for egress in [EntryPortId(12 + i), EntryPortId(8 + i)] {
            routes.push(
                shortest::shortest_path(&topo, ingress, egress, &mut rng).expect("connected"),
            );
        }
        policies.push((ingress, generator.policy(12, i as u64)));
    }
    let mut instance = Instance::new(topo, routes, policies).unwrap();
    let outcome = RulePlacer::new(options())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let mut placement = outcome.placement.expect("day 0 feasible");
    verify::verify_placement(&instance, &placement, 64, 100).unwrap();
    assert_capacity_respected(&instance, &placement);
    let full_solve = outcome.stats.elapsed;

    // Weeks 1..3: one new tenant each, via restricted sub-solves.
    for week in 0..3usize {
        let ingress = EntryPortId(4 + week);
        let route = shortest::shortest_path(
            instance.topology(),
            ingress,
            EntryPortId(15 - week),
            &mut rng,
        )
        .expect("connected");
        let out = incremental::install_policies(
            &instance,
            &placement,
            vec![(
                ingress,
                generator.policy(12, 100 + week as u64),
                vec![route],
            )],
            &options(),
            Objective::TotalRules,
        )
        .unwrap();
        assert_eq!(out.status, SolveStatus::Optimal, "week {week} install");
        instance = out.instance;
        placement = out.placement.unwrap();
        verify::verify_placement(&instance, &placement, 64, 101 + week as u64).unwrap();
        assert_capacity_respected(&instance, &placement);
        // Incremental should beat the full solve comfortably.
        assert!(
            out.elapsed < full_solve * 10,
            "week {week}: incremental {:?} vs full {full_solve:?}",
            out.elapsed
        );
    }

    // A maintenance reroute for tenant 1.
    let mut new_routes = Vec::new();
    for egress in [EntryPortId(10), EntryPortId(11)] {
        new_routes.push(
            shortest::shortest_path(instance.topology(), EntryPortId(1), egress, &mut rng)
                .expect("connected"),
        );
    }
    let out = incremental::reroute_policy(
        &instance,
        &placement,
        EntryPortId(1),
        new_routes,
        &options(),
        Objective::TotalRules,
    )
    .unwrap();
    assert_eq!(out.status, SolveStatus::Optimal);
    instance = out.instance;
    placement = out.placement.unwrap();
    verify::verify_placement(&instance, &placement, 64, 200).unwrap();
    assert_capacity_respected(&instance, &placement);

    // An urgent blacklist rule for every tenant, greedily.
    let urgent = Ternary::parse("1111000011110000").unwrap();
    let ingresses: Vec<EntryPortId> = instance.policies().map(|(l, _)| l).collect();
    for (i, ingress) in ingresses.into_iter().enumerate() {
        let top = instance
            .policy(ingress)
            .unwrap()
            .rules()
            .first()
            .map(|r| r.priority() + 1)
            .unwrap_or(1);
        let out = incremental::add_rule_greedy(
            &instance,
            &placement,
            ingress,
            Rule::new(urgent, Action::Drop, top),
        )
        .unwrap();
        assert_eq!(
            out.status,
            SolveStatus::Feasible,
            "urgent rule for {ingress}"
        );
        instance = out.instance;
        placement = out.placement.unwrap();
        verify::verify_placement(&instance, &placement, 32, 300 + i as u64).unwrap();
        assert_capacity_respected(&instance, &placement);
    }

    // Final sanity: the network now blacklists `urgent` from every
    // covered ingress.
    let tables = flowplace::core::tables::emit_tables(&instance, &placement).unwrap();
    for route in instance.routes().iter() {
        let policy = instance.policy(route.ingress).unwrap();
        let pkt = urgent.sample_packet();
        assert_eq!(policy.evaluate(&pkt), Action::Drop);
        assert_eq!(
            verify::evaluate_route(&tables, route, &pkt),
            Action::Drop,
            "urgent traffic must die on {route}"
        );
    }
}

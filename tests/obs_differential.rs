//! Differential tests for observability: telemetry must be
//! deterministic (byte-identical dumps across same-seed chaos replays)
//! and strictly effect-free (attaching a sink changes no placement, no
//! dataplane byte, no counter).

use std::path::PathBuf;
use std::process::Command;

use flowplace::ctrl::{parse_fault_schedule, FaultPlan};
use flowplace::obs::{validate_obs_json, Obs};
use flowplace::prelude::*;

fn chaos_options() -> CtrlOptions {
    let schedule_text =
        std::fs::read_to_string("traces/chaos.faults").expect("committed fault schedule");
    CtrlOptions {
        batch_size: 4,
        faults: FaultPlan {
            seed: 42,
            install_reject_rate: 0.1,
            crash_rate: 0.02,
            recover_rate: 0.5,
            schedule: parse_fault_schedule(&schedule_text).expect("schedule parses"),
        },
        ..CtrlOptions::default()
    }
}

fn chaos_controller(observed: bool) -> Controller {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(16);
    let mut ctrl = Controller::new(topo, chaos_options());
    if observed {
        ctrl.attach_obs(Obs::new());
    }
    let trace = std::fs::read_to_string("traces/chaos.trace").expect("committed chaos trace");
    ctrl.replay_trace(&trace).expect("chaos replay succeeds");
    ctrl
}

/// Attaching an obs sink must not change a single observable byte of
/// the chaos run: same placement, same dataplane dump, same counters,
/// same virtual clock.
#[test]
fn metrics_on_vs_off_is_effect_free() {
    let plain = chaos_controller(false);
    let observed = chaos_controller(true);
    assert_eq!(plain.placement(), observed.placement());
    assert_eq!(plain.dataplane().dump(), observed.dataplane().dump());
    assert_eq!(plain.stats(), observed.stats());
    assert_eq!(plain.epoch(), observed.epoch());
    assert_eq!(plain.virtual_time_ms(), observed.virtual_time_ms());
    assert_eq!(plain.out_of_service(), observed.out_of_service());
}

/// Two same-seed library replays produce byte-identical trace and
/// metrics dumps.
#[test]
fn same_seed_chaos_dumps_are_byte_identical() {
    let a = chaos_controller(true);
    let b = chaos_controller(true);
    let (oa, ob) = (a.obs().unwrap(), b.obs().unwrap());
    assert_eq!(oa.trace_json(), ob.trace_json(), "trace dumps diverged");
    assert_eq!(
        oa.metrics_json(),
        ob.metrics_json(),
        "metrics dumps diverged"
    );
    validate_obs_json(&oa.trace_json()).expect("trace validates");
    validate_obs_json(&oa.metrics_json()).expect("metrics validates");
}

/// The committed telemetry artifacts pin the dump bytes across
/// refactors of the hot-path data structures: swapping the controller's
/// internal hash maps (e.g. SipHash -> shared FNV) must not reorder a
/// single span or metrics line. A diff here means an iteration-order
/// dependence leaked into telemetry — a determinism bug to fix, not an
/// artifact to regenerate.
#[test]
fn chaos_dumps_match_committed_artifacts() {
    let ctrl = chaos_controller(true);
    let obs = ctrl.obs().unwrap();
    let committed_trace = std::fs::read_to_string("OBS_trace.json").expect("committed trace dump");
    let committed_metrics =
        std::fs::read_to_string("OBS_metrics.json").expect("committed metrics dump");
    assert_eq!(
        obs.trace_json(),
        committed_trace,
        "trace dump drifted from the committed artifact"
    );
    assert_eq!(
        obs.metrics_json(),
        committed_metrics,
        "metrics dump drifted from the committed artifact"
    );
}

fn flowplace_chaos(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_flowplace"))
        .args([
            "ctrl",
            "replay",
            "traces/chaos.trace",
            "--batch",
            "4",
            "--faults",
            "traces/chaos.faults",
            "--fault-seed",
            "42",
            "--reject-rate",
            "0.1",
            "--crash-rate",
            "0.02",
            "--recover-rate",
            "0.5",
        ])
        .args(extra)
        .output()
        .expect("binary runs")
}

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("flowplace-obs-diff-{}-{name}", std::process::id()))
}

/// The CLI acceptance path: two same-seed chaos replays with
/// `--trace-out`/`--metrics-out` write byte-identical, schema-valid
/// dumps, and emitting them leaves stdout (epoch reports, stats,
/// dataplane dump, audit verdict) untouched vs a telemetry-free run.
#[test]
fn cli_chaos_replay_dumps_are_byte_identical_and_effect_free() {
    let baseline = flowplace_chaos(&[]);
    assert!(
        baseline.status.success(),
        "{}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    let mut dumps: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for run in 0..2 {
        let trace_path = temp_file(&format!("t{run}.json"));
        let metrics_path = temp_file(&format!("m{run}.json"));
        let out = flowplace_chaos(&[
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, baseline.stdout,
            "run {run}: telemetry flags changed the replay's stdout"
        );
        let trace = std::fs::read(&trace_path).expect("trace written");
        let metrics = std::fs::read(&metrics_path).expect("metrics written");
        validate_obs_json(std::str::from_utf8(&trace).unwrap()).expect("trace validates");
        validate_obs_json(std::str::from_utf8(&metrics).unwrap()).expect("metrics validates");
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
        dumps.push((trace, metrics));
    }
    assert_eq!(dumps[0].0, dumps[1].0, "trace dumps diverged across runs");
    assert_eq!(dumps[0].1, dumps[1].1, "metrics dumps diverged across runs");
}

/// `flowplace obs summarize` renders both dump kinds and re-validates
/// on read; a corrupted dump is rejected with a non-zero exit.
#[test]
fn cli_obs_summarize_renders_and_validates() {
    let trace_path = temp_file("sum-t.json");
    let metrics_path = temp_file("sum-m.json");
    let out = flowplace_chaos(&[
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--metrics-out",
        metrics_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_flowplace"))
        .args([
            "obs",
            "summarize",
            trace_path.to_str().unwrap(),
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("(trace)"), "summarize names the trace dump");
    assert!(
        text.contains("(metrics)"),
        "summarize names the metrics dump"
    );
    assert!(text.contains("ctrl.epoch"), "span table renders");
    assert!(text.contains("ctrl.epochs"), "counter table renders");

    // Corrupt the metrics dump: summarize must refuse it.
    let mut corrupted = std::fs::read_to_string(&metrics_path).unwrap();
    corrupted = corrupted.replace("flowplace.obs.v1", "flowplace.obs.v9");
    std::fs::write(&metrics_path, corrupted).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_flowplace"))
        .args(["obs", "summarize", metrics_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "corrupted dump must be rejected");

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&metrics_path).ok();
}

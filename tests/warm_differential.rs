//! Differential test for the warm path: a controller with the warm
//! caches enabled (the default) must stay byte-identical to a cold
//! controller over randomized §IV-E update streams — rule adds,
//! removes, modifies, and reroutes — including across checkpoint /
//! rollback, where the placement memo answers the replayed epoch.
//!
//! Both controllers see the exact same event sequence, one event per
//! epoch, and after every epoch the working placement and the emitted
//! dataplane tables must match exactly.

use flowplace::acl::{Action, Policy, Rule, RuleId, Ternary};
use flowplace::core::WarmConfig;
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 4;
const SEEDS: u64 = 32;

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    let action = if rng.gen_bool(0.6) {
        Action::Drop
    } else {
        Action::Permit
    };
    Rule::new(Ternary::new(WIDTH, care, value), action, priority)
}

fn install(rng: &mut StdRng, ingress: usize) -> Event {
    let (egress, switches) = if ingress == 0 {
        (2, vec![0, 1, 2])
    } else {
        (0, vec![2, 1, 0])
    };
    let n = rng.gen_range(2..=5usize);
    let mut rules: Vec<Rule> = (0..n).map(|p| rand_rule(rng, p as u32 + 2)).collect();
    rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
    Event::InstallPolicy {
        ingress: EntryPortId(ingress),
        policy: Policy::from_rules(rules).expect("distinct priorities"),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

fn reroute(rng: &mut StdRng, ingress: usize) -> Event {
    let (egress, long, short) = if ingress == 0 {
        (2, vec![0, 1, 2], vec![0, 2])
    } else {
        (0, vec![2, 1, 0], vec![2, 0])
    };
    let switches = if rng.gen_bool(0.5) { long } else { short };
    Event::Reroute {
        ingress: EntryPortId(ingress),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

/// One §IV-E update, with occasional checkpoint / rollback / re-solve
/// events mixed in so the memo path fires on replayed instances.
fn rand_event(rng: &mut StdRng, priority: &mut u32) -> Event {
    *priority += 1;
    let ingress = EntryPortId(rng.gen_range(0..2usize));
    match rng.gen_range(0..12u32) {
        0..=3 => Event::AddRule {
            ingress,
            rule: rand_rule(rng, *priority),
        },
        4..=5 => Event::RemoveRule {
            ingress,
            rule: RuleId(rng.gen_range(0..4usize)),
        },
        6..=7 => Event::ModifyRule {
            ingress,
            rule: RuleId(rng.gen_range(0..4usize)),
            replacement: rand_rule(rng, *priority),
        },
        8..=9 => reroute(rng, ingress.0),
        10 => Event::Checkpoint,
        _ => Event::Rollback,
    }
}

fn controller(capacity: usize, warm: WarmConfig) -> Controller {
    let mut topo = Topology::linear(3);
    topo.set_uniform_capacity(capacity);
    Controller::new(
        topo,
        CtrlOptions {
            batch_size: 1,
            warm,
            ..CtrlOptions::default()
        },
    )
}

/// Drives a cold and a warm controller through the same event stream
/// and checks the placement and dataplane tables after every epoch.
#[test]
fn warm_path_is_byte_identical_to_cold() {
    let cold_cfg = WarmConfig {
        enabled: false,
        ..WarmConfig::default()
    };
    let mut total_memo_hits = 0;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x11CE_0000 ^ seed);
        let capacity = rng.gen_range(6..12usize);
        let mut cold = controller(capacity, cold_cfg.clone());
        let mut warm = controller(capacity, WarmConfig::default());

        let mut events = vec![install(&mut rng, 0), install(&mut rng, 1)];
        // A checkpoint → burst → rollback → re-solve core guarantees
        // the rolled-back instance is replayed verbatim each seed.
        events.push(Event::Checkpoint);
        let mut priority = 10;
        for _ in 0..rng.gen_range(8..14usize) {
            events.push(rand_event(&mut rng, &mut priority));
        }
        events.push(Event::Rollback);
        events.push(Event::Solve);

        for (step, event) in events.into_iter().enumerate() {
            cold.submit(event.clone()).expect("cold queue has room");
            warm.submit(event).expect("warm queue has room");
            cold.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: cold run failed: {e}"));
            warm.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: warm run failed: {e}"));
            assert_eq!(
                warm.placement(),
                cold.placement(),
                "seed {seed} step {step}: placements diverged"
            );
            assert_eq!(
                warm.dataplane().dump(),
                cold.dataplane().dump(),
                "seed {seed} step {step}: dataplane tables diverged"
            );
        }
        assert_eq!(warm.stats().events_in, cold.stats().events_in);
        assert_eq!(warm.stats().events_failed, cold.stats().events_failed);
        assert_eq!(warm.stats().epochs, cold.stats().epochs);
        total_memo_hits += warm.stats().warm_memo_hits;
        assert_eq!(cold.stats().warm_memo_hits, 0, "cold controller cached");
    }
    assert!(
        total_memo_hits > 0,
        "the memo never fired across {SEEDS} rollback streams"
    );
}

/// A 2-entry placement memo under churn: FIFO eviction must fire, the
/// lookup ledger must balance (`hits + misses == lookups`, evictions
/// bounded by misses), and the rollback *error* path (nothing to roll
/// back) must reject cleanly on both sides — all while the warm
/// controller stays byte-identical to the cold one.
#[test]
fn memo_eviction_and_rollback_error_path_stay_identical() {
    let cold_cfg = WarmConfig {
        enabled: false,
        ..WarmConfig::default()
    };
    let tiny = WarmConfig {
        memo_capacity: 2,
        ..WarmConfig::default()
    };
    let mut total_evictions = 0;
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xE71C_0000 ^ seed);
        let capacity = rng.gen_range(6..12usize);
        let mut cold = controller(capacity, cold_cfg.clone());
        let mut warm = controller(capacity, tiny.clone());

        // Leading rollback with no checkpoint: the per-event error path
        // must reject identically on both controllers.
        let mut events = vec![
            Event::Rollback,
            install(&mut rng, 0),
            install(&mut rng, 1),
            Event::Checkpoint,
        ];
        let mut priority = 10;
        // Enough distinct full solves to overflow a 2-entry memo, then
        // a rollback + re-solve whose memoized instance may or may not
        // have survived eviction — both answers must match cold.
        for _ in 0..rng.gen_range(6..10usize) {
            events.push(rand_event(&mut rng, &mut priority));
            if rng.gen_bool(0.4) {
                events.push(Event::Solve);
            }
        }
        events.push(Event::Rollback);
        events.push(Event::Solve);

        for (step, event) in events.into_iter().enumerate() {
            cold.submit(event.clone()).expect("cold queue has room");
            warm.submit(event).expect("warm queue has room");
            cold.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: cold run failed: {e}"));
            warm.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: warm run failed: {e}"));
            assert_eq!(
                warm.placement(),
                cold.placement(),
                "seed {seed} step {step}: placements diverged"
            );
            assert_eq!(
                warm.dataplane().dump(),
                cold.dataplane().dump(),
                "seed {seed} step {step}: dataplane tables diverged"
            );
        }
        let stats = warm.stats();
        assert!(
            stats.events_failed >= 1,
            "seed {seed}: the empty rollback was not rejected"
        );
        assert_eq!(stats.events_failed, cold.stats().events_failed);
        assert_eq!(
            stats.warm_memo_lookups,
            stats.warm_memo_hits + stats.warm_memo_misses,
            "seed {seed}: memo ledger out of balance"
        );
        assert!(
            stats.warm_memo_evictions <= stats.warm_memo_misses,
            "seed {seed}: more evictions than inserting misses"
        );
        assert_eq!(
            cold.stats().warm_memo_lookups,
            0,
            "seed {seed}: cold controller touched the memo"
        );
        total_evictions += stats.warm_memo_evictions;
    }
    assert!(
        total_evictions > 0,
        "the 2-entry memo never evicted across {SEEDS} streams"
    );
}

//! Differential oracle for the parallel solve pipeline.
//!
//! Two guarantees are exercised over a corpus of seeded ClassBench
//! instances:
//!
//! 1. **Byte-identity** — with `portfolio: false`, the parallel pipeline
//!    must return exactly the serial result (same placement, status, and
//!    objective) for any thread count. This is the determinism contract
//!    of `flowplace_core::par` (one code path + merge-order rule).
//! 2. **Fail-closed engines** — every placement any engine produces
//!    (ILP, greedy heuristic, PB-SAT) must pass the one-sided
//!    `verify::no_false_negatives` check: no packet a policy DROPs may
//!    traverse the deployed tables.
//!
//! On a mismatch the harness *shrinks* the instance (fewer rules, then
//! fewer ingresses) while the failure persists and panics with the
//! minimal offending configuration, so a regression reproduces with one
//! seed instead of a corpus bisect.

use flowplace::classbench::{Generator, Profile};
use flowplace::core::par::ParallelConfig;
use flowplace::core::verify;
use flowplace::core::{greedy, Instance};
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};
use flowplace::routing::shortest;

/// Number of seeded instances in the corpus (the issue floor is 32).
const CORPUS: u64 = 32;

/// One corpus configuration, derived deterministically from its seed.
#[derive(Clone, Copy, Debug)]
struct Config {
    seed: u64,
    ingresses: usize,
    rules: usize,
    capacity: usize,
}

impl Config {
    /// Derives a small-but-varied instance shape from the seed: 2–4
    /// tenants, 6–14 rules each, capacities straddling the feasibility
    /// boundary so infeasible instances are part of the corpus too.
    fn from_seed(seed: u64) -> Config {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF_2026);
        Config {
            seed,
            ingresses: rng.gen_range(2usize..5),
            rules: rng.gen_range(6usize..15),
            capacity: rng.gen_range(8usize..61),
        }
    }

    fn build(&self) -> Instance {
        let mut topo = Topology::fat_tree(4);
        topo.set_uniform_capacity(self.capacity);
        let routes: RouteSet = shortest::routes_per_ingress(&topo, 2, self.seed)
            .iter()
            .filter(|r| r.ingress.0 < self.ingresses)
            .cloned()
            .collect();
        let generator = Generator::new(Profile::Firewall, 16).with_seed(self.seed ^ 0xACE1);
        let policies: Vec<(EntryPortId, Policy)> = (0..self.ingresses)
            .map(|i| (EntryPortId(i), generator.policy(self.rules, i as u64)))
            .collect();
        Instance::new(topo, routes, policies).expect("corpus instance is valid")
    }
}

fn serial_options() -> PlacementOptions {
    PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    }
}

/// Checks byte-identity between the serial path and the parallel
/// pipeline (portfolio off) on one configuration. `Err` carries a
/// human-readable mismatch description.
fn check_identity(cfg: &Config, threads: usize) -> Result<(), String> {
    let instance = cfg.build();
    let serial = RulePlacer::new(serial_options())
        .place(&instance, Objective::TotalRules)
        .expect("placement never errors");
    let par_options = PlacementOptions {
        parallel: ParallelConfig {
            threads,
            portfolio: false,
        },
        ..serial_options()
    };
    let par = RulePlacer::new(par_options).place_par(&instance, Objective::TotalRules);
    if par.outcome.status != serial.status {
        return Err(format!(
            "status diverged: serial {:?}, parallel {:?}",
            serial.status, par.outcome.status
        ));
    }
    if par.outcome.objective != serial.objective {
        return Err(format!(
            "objective diverged: serial {:?}, parallel {:?}",
            serial.objective, par.outcome.objective
        ));
    }
    if par.outcome.placement != serial.placement {
        return Err("placements diverged".to_string());
    }
    if format!("{}", par.provenance) != "single:ilp" {
        return Err(format!(
            "non-portfolio run must report single-engine provenance, got {}",
            par.provenance
        ));
    }
    Ok(())
}

/// Shrinks a failing configuration: first fewer rules, then fewer
/// ingresses, keeping every step that still fails. Returns the minimal
/// failing configuration and its failure message.
fn shrink(
    mut cfg: Config,
    mut reason: String,
    still_fails: impl Fn(&Config) -> Result<(), String>,
) -> (Config, String) {
    loop {
        let mut candidates = Vec::new();
        if cfg.rules > 1 {
            candidates.push(Config {
                rules: cfg.rules - 1,
                ..cfg
            });
        }
        if cfg.ingresses > 1 {
            candidates.push(Config {
                ingresses: cfg.ingresses - 1,
                ..cfg
            });
        }
        let next = candidates
            .into_iter()
            .find_map(|c| still_fails(&c).err().map(|r| (c, r)));
        match next {
            Some((c, r)) => {
                cfg = c;
                reason = r;
            }
            None => return (cfg, reason),
        }
    }
}

fn fail_shrunk(
    cfg: Config,
    reason: String,
    what: &str,
    still_fails: impl Fn(&Config) -> Result<(), String>,
) -> ! {
    let original = cfg;
    let (minimal, reason) = shrink(cfg, reason, still_fails);
    panic!(
        "{what} failed: {reason}\n  offending seed: {} (shrunk to ingresses={} rules={} \
         capacity={} from ingresses={} rules={})\n  reproduce: Config {{ seed: {}, ingresses: \
         {}, rules: {}, capacity: {} }}",
        minimal.seed,
        minimal.ingresses,
        minimal.rules,
        minimal.capacity,
        original.ingresses,
        original.rules,
        minimal.seed,
        minimal.ingresses,
        minimal.rules,
        minimal.capacity,
    );
}

#[test]
fn parallel_pipeline_is_byte_identical_to_serial() {
    for seed in 0..CORPUS {
        let cfg = Config::from_seed(seed);
        // 4 worker threads exercises chunked fan-out even on small
        // instances (more threads than ingresses on some seeds).
        if let Err(reason) = check_identity(&cfg, 4) {
            fail_shrunk(cfg, reason, "byte-identity (4 threads)", |c| {
                check_identity(c, 4)
            });
        }
        // threads=0 resolves to the machine's parallelism — identity
        // must hold for ANY thread count, including auto.
        if let Err(reason) = check_identity(&cfg, 0) {
            fail_shrunk(cfg, reason, "byte-identity (auto threads)", |c| {
                check_identity(c, 0)
            });
        }
    }
}

/// Runs one engine on the instance and checks its placement (when one
/// exists) for false negatives.
fn check_fail_closed(cfg: &Config, engine: &str) -> Result<(), String> {
    let instance = cfg.build();
    let placement = match engine {
        "greedy" => greedy::greedy_place(&instance),
        "ilp" | "sat" => {
            let options = PlacementOptions {
                engine: if engine == "sat" {
                    PlacerEngine::Sat
                } else {
                    PlacerEngine::Ilp
                },
                ..serial_options()
            };
            RulePlacer::new(options)
                .place(&instance, Objective::TotalRules)
                .expect("placement never errors")
                .placement
        }
        other => unreachable!("unknown engine {other}"),
    };
    let Some(placement) = placement else {
        // Infeasible (or greedy gave up): nothing deployed, nothing to
        // verify — the corpus intentionally includes such capacities.
        return Ok(());
    };
    verify::no_false_negatives(&instance, &placement, 64, cfg.seed)
        .map_err(|e| format!("{engine} placement leaks a dropped packet: {e}"))
}

#[test]
fn ilp_greedy_and_sat_placements_are_fail_closed() {
    for seed in 0..CORPUS {
        let cfg = Config::from_seed(seed);
        for engine in ["ilp", "greedy", "sat"] {
            if let Err(reason) = check_fail_closed(&cfg, engine) {
                fail_shrunk(cfg, reason, "fail-closed check", |c| {
                    check_fail_closed(c, engine)
                });
            }
        }
    }
}

/// Solves one configuration with the PB-SAT engine under the modern
/// glucose restart strategy (`--sat-restart glucose`) and the given
/// thread count, returning everything determinism must pin down:
/// placement, status, objective, and the raw CDCL counters.
fn glucose_solve(
    cfg: &Config,
    threads: usize,
) -> (
    Option<flowplace::core::Placement>,
    SolveStatus,
    Option<f64>,
    flowplace::pbsat::SolverStats,
) {
    let instance = cfg.build();
    let options = PlacementOptions {
        engine: PlacerEngine::Sat,
        sat: flowplace::pbsat::SolverOptions {
            restart: flowplace::pbsat::RestartStrategy::Glucose,
            db_reduction: true,
        },
        parallel: ParallelConfig {
            threads,
            portfolio: false,
        },
        ..serial_options()
    };
    let out = RulePlacer::new(options).place_par(&instance, Objective::TotalRules);
    let stats = out
        .outcome
        .stats
        .sat
        .expect("SAT engine reports solver stats");
    (
        out.outcome.placement,
        out.outcome.status,
        out.outcome.objective,
        stats,
    )
}

#[test]
fn glucose_sat_engine_is_deterministic_across_thread_counts() {
    // Same seed + same options ⇒ byte-identical placements AND
    // byte-identical solver counters (conflicts, restarts, reductions,
    // LBD sums) at any `--threads`. The CDCL search itself is
    // single-threaded per solve, so even the effort counters must not
    // wobble when the surrounding pipeline fans out.
    for seed in 0..CORPUS {
        let cfg = Config::from_seed(seed);
        let reference = glucose_solve(&cfg, 1);
        for threads in [4usize, 0] {
            let got = glucose_solve(&cfg, threads);
            assert_eq!(
                got, reference,
                "glucose SAT solve diverged at threads={threads} (seed {seed})"
            );
        }
        // Re-running the identical configuration must also be a
        // byte-identical replay, not merely thread-stable.
        let replay = glucose_solve(&cfg, 1);
        assert_eq!(
            replay, reference,
            "glucose SAT replay wobbled (seed {seed})"
        );
    }
}

#[test]
fn corpus_is_nontrivial() {
    // Guard the corpus itself: the seeds must produce varied shapes and
    // at least one feasible instance, or the two tests above would pass
    // vacuously.
    let configs: Vec<Config> = (0..CORPUS).map(Config::from_seed).collect();
    assert!(configs.len() >= 32, "issue requires >= 32 seeded instances");
    let distinct_shapes: std::collections::BTreeSet<(usize, usize)> =
        configs.iter().map(|c| (c.ingresses, c.rules)).collect();
    assert!(distinct_shapes.len() >= 8, "corpus shapes are too uniform");
    let feasible = configs
        .iter()
        .filter(|c| {
            RulePlacer::new(serial_options())
                .place(&c.build(), Objective::TotalRules)
                .expect("placement never errors")
                .placement
                .is_some()
        })
        .count();
    assert!(
        feasible >= CORPUS as usize / 2,
        "only {feasible}/{CORPUS} corpus instances are feasible"
    );
}

//! End-to-end integration tests: the full pipeline (topology → routing →
//! policies → encode → solve → emit tables → verify) through the public
//! `flowplace` facade, across engines, encodings, and features.

use std::time::Duration;

use flowplace::classbench::{Generator, PolicySuite, Profile};
use flowplace::core::{tables, verify};
use flowplace::milp::MipOptions;
use flowplace::prelude::*;
use flowplace::routing::shortest;

fn small_fat_tree_instance(
    ingresses: usize,
    rules: usize,
    shared: usize,
    capacity: usize,
    seed: u64,
) -> Instance {
    let mut topo = Topology::fat_tree(4);
    topo.set_uniform_capacity(capacity);
    let routes: RouteSet = shortest::routes_per_ingress(&topo, 2, seed)
        .iter()
        .filter(|r| r.ingress.0 < ingresses)
        .cloned()
        .collect();
    let generator = Generator::new(Profile::Firewall, 16).with_seed(seed);
    let suite = PolicySuite::generate(&generator, rules, ingresses, shared);
    let policies: Vec<(EntryPortId, Policy)> = suite
        .policies
        .into_iter()
        .enumerate()
        .map(|(i, p)| (EntryPortId(i), p))
        .collect();
    Instance::new(topo, routes, policies).expect("valid instance")
}

fn options(engine: PlacerEngine, merging: bool, dep: DependencyEncoding) -> PlacementOptions {
    PlacementOptions {
        engine,
        merging,
        dependency: dep,
        greedy_warm_start: true,
        mip: MipOptions {
            time_limit: Some(Duration::from_secs(30)),
            ..MipOptions::default()
        },
        ..PlacementOptions::default()
    }
}

#[test]
fn ilp_placement_verifies_on_fat_tree() {
    let instance = small_fat_tree_instance(6, 10, 0, 60, 42);
    let outcome = RulePlacer::new(options(
        PlacerEngine::Ilp,
        false,
        DependencyEncoding::Pairwise,
    ))
    .place(&instance, Objective::TotalRules)
    .unwrap();
    assert_eq!(outcome.status, SolveStatus::Optimal);
    let placement = outcome.placement.unwrap();
    verify::verify_placement(&instance, &placement, 128, 1).expect("semantics preserved");
}

#[test]
fn sat_placement_verifies_on_fat_tree() {
    let instance = small_fat_tree_instance(6, 10, 0, 60, 42);
    let outcome = RulePlacer::new(options(
        PlacerEngine::Sat,
        false,
        DependencyEncoding::Pairwise,
    ))
    .place(&instance, Objective::TotalRules)
    .unwrap();
    assert_eq!(outcome.status, SolveStatus::Optimal);
    let placement = outcome.placement.unwrap();
    verify::verify_placement(&instance, &placement, 128, 2).expect("semantics preserved");
}

#[test]
fn all_dependency_encodings_reach_same_objective() {
    let instance = small_fat_tree_instance(5, 8, 0, 25, 7);
    let mut objectives = Vec::new();
    for dep in [
        DependencyEncoding::Pairwise,
        DependencyEncoding::Aggregated,
        DependencyEncoding::Lazy,
    ] {
        let outcome = RulePlacer::new(options(PlacerEngine::Ilp, false, dep))
            .place(&instance, Objective::TotalRules)
            .unwrap();
        assert_eq!(outcome.status, SolveStatus::Optimal, "encoding {dep:?}");
        objectives.push(outcome.objective.unwrap());
    }
    assert!((objectives[0] - objectives[1]).abs() < 1e-6);
    assert!((objectives[0] - objectives[2]).abs() < 1e-6);
}

#[test]
fn merging_never_increases_total_rules_and_verifies() {
    let instance = small_fat_tree_instance(6, 8, 4, 40, 9);
    let plain = RulePlacer::new(options(PlacerEngine::Ilp, false, DependencyEncoding::Lazy))
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let merged = RulePlacer::new(options(PlacerEngine::Ilp, true, DependencyEncoding::Lazy))
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p0 = plain.placement.expect("plain feasible");
    let p1 = merged.placement.expect("merged feasible");
    assert!(
        p1.total_rules() <= p0.total_rules(),
        "merging must not cost entries: {} > {}",
        p1.total_rules(),
        p0.total_rules()
    );
    verify::verify_placement(&instance, &p1, 128, 3).expect("merged semantics preserved");
}

#[test]
fn sat_and_ilp_agree_on_feasibility() {
    // Sweep capacity through the transition; the two engines must agree
    // on feasible vs infeasible at every point.
    for capacity in [2usize, 4, 8, 16, 48] {
        let instance = small_fat_tree_instance(4, 8, 0, capacity, 11);
        let ilp = RulePlacer::new(options(
            PlacerEngine::Ilp,
            false,
            DependencyEncoding::Pairwise,
        ))
        .place(&instance, Objective::TotalRules)
        .unwrap();
        let sat = RulePlacer::new(options(
            PlacerEngine::Sat,
            false,
            DependencyEncoding::Pairwise,
        ))
        .place(&instance, Objective::TotalRules)
        .unwrap();
        let ilp_feasible = ilp.placement.is_some();
        let sat_feasible = sat.placement.is_some();
        assert_eq!(
            ilp_feasible, sat_feasible,
            "engines disagree at capacity {capacity}"
        );
    }
}

#[test]
fn emitted_tables_respect_capacity() {
    let instance = small_fat_tree_instance(6, 12, 2, 30, 17);
    let outcome = RulePlacer::new(options(PlacerEngine::Ilp, true, DependencyEncoding::Lazy))
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let Some(placement) = outcome.placement else {
        panic!("expected feasible at capacity 30");
    };
    let tables = tables::emit_tables(&instance, &placement).unwrap();
    for (i, t) in tables.iter().enumerate() {
        assert!(
            t.len() <= instance.topology().capacity(SwitchId(i)),
            "switch {i} exceeds capacity: {} > {}",
            t.len(),
            instance.topology().capacity(SwitchId(i))
        );
    }
    // The placement's load accounting matches the emitted tables.
    let load = placement.per_switch_load(&instance);
    for (i, t) in tables.iter().enumerate() {
        assert_eq!(t.len(), load[i], "load accounting for switch {i}");
    }
}

#[test]
fn distance_weighted_prefers_upstream() {
    let instance = small_fat_tree_instance(4, 8, 0, 200, 23);
    let total = RulePlacer::new(options(
        PlacerEngine::Ilp,
        false,
        DependencyEncoding::Pairwise,
    ))
    .place(&instance, Objective::TotalRules)
    .unwrap()
    .placement
    .unwrap();
    let upstream = RulePlacer::new(options(
        PlacerEngine::Ilp,
        false,
        DependencyEncoding::Pairwise,
    ))
    .place(&instance, Objective::DistanceWeighted)
    .unwrap()
    .placement
    .unwrap();
    // Mean hop distance of placed rules must not increase.
    let mean_loc = |p: &Placement| -> f64 {
        let mut sum = 0usize;
        let mut count = 0usize;
        for ((ingress, _), switches) in p.iter() {
            for &s in switches {
                sum += instance.routes().loc(*ingress, s).unwrap_or(0);
                count += 1;
            }
        }
        sum as f64 / count.max(1) as f64
    };
    assert!(
        mean_loc(&upstream) <= mean_loc(&total) + 1e-9,
        "distance-weighted placement sits further downstream"
    );
    verify::verify_placement(&instance, &upstream, 64, 4).expect("verified");
}

#[test]
fn redundancy_removal_pre_pass_preserves_outcome_feasibility() {
    // Fig. 4 optional pre-pass: solving the reduced policies must stay
    // feasible and verified against the *reduced* policies.
    let instance = small_fat_tree_instance(4, 12, 0, 60, 31);
    let reduced: Vec<(EntryPortId, Policy)> = instance
        .policies()
        .map(|(l, q)| (l, flowplace::acl::redundancy::remove_redundant(q).policy))
        .collect();
    let reduced_instance = Instance::new(
        instance.topology().clone(),
        instance.routes().clone(),
        reduced,
    )
    .unwrap();
    let outcome = RulePlacer::new(options(PlacerEngine::Ilp, false, DependencyEncoding::Lazy))
        .place(&reduced_instance, Objective::TotalRules)
        .unwrap();
    let placement = outcome.placement.expect("reduced instance feasible");
    verify::verify_placement(&reduced_instance, &placement, 128, 5).expect("verified");
    // And the deployment of the reduced policy equals the original
    // policy's semantics (since reduction is equivalence-preserving).
    let tables = tables::emit_tables(&reduced_instance, &placement).unwrap();
    for route in instance.routes().iter() {
        let original = instance.policy(route.ingress).unwrap();
        for rule in original.rules() {
            let pkt = rule.match_field().sample_packet();
            let expected = original.evaluate(&pkt);
            let actual = verify::evaluate_route(&tables, route, &pkt);
            assert_eq!(expected, actual, "packet {pkt} on {route}");
        }
    }
}

#[test]
fn placement_over_full_ecmp_path_set_verifies() {
    use flowplace::routing::kshortest;
    let mut topo = Topology::fat_tree(4);
    topo.set_uniform_capacity(6);
    let routes = kshortest::ecmp_routes(&topo, &[(EntryPortId(0), EntryPortId(15))], 100);
    assert_eq!(routes.len(), 4, "(k/2)^2 equal-cost paths across pods");
    let policy = Policy::from_ordered(vec![
        (Ternary::parse("1100").unwrap(), Action::Permit),
        (Ternary::parse("1***").unwrap(), Action::Drop),
    ])
    .unwrap();
    let instance = Instance::new(topo, routes, vec![(EntryPortId(0), policy)]).unwrap();
    let outcome = RulePlacer::new(PlacementOptions::default())
        .place(&instance, Objective::TotalRules)
        .unwrap();
    let p = outcome.placement.expect("feasible");
    // The shared ingress edge switch covers all four paths with one pair.
    assert_eq!(p.total_rules(), 2);
    flowplace::core::verify::verify_placement_exhaustive(&instance, &p).unwrap();
}

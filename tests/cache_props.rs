//! Property suite for the TCAM rule-caching tier.
//!
//! Three guarantees, each exercised across a seeded sweep:
//!
//! * **dependency safety** — whatever a Zipf flow stream makes the
//!   cache do (inserts, closure pulls, cascaded evictions, miss-batch
//!   re-solves), an eviction may never strand a resident entry whose
//!   higher-priority overlapping shield is gone: the structural audit,
//!   the punt-as-drop fail-closed audit, and the `dep_violations`
//!   counter all stay green for 32 seeds;
//! * **the audits are not vacuous** — a negative control that evicts a
//!   shield *without* the cascade (the bug class a naive cache ships)
//!   must trip both audits;
//! * **determinism** — the same seed replays byte-identically: flow
//!   reports, cache residency dump, and dataplane dump.

use std::collections::BTreeSet;

use flowplace::acl::{Action, Policy, Rule, Ternary};
use flowplace::classbench::{Generator, Profile};
use flowplace::ctrl::{CacheConfig, CachePolicy, Controller, CtrlOptions, TcamEntry};
use flowplace::prelude::*;
use flowplace::traffic::{generate, TrafficConfig};

const WIDTH: u32 = 8;

/// A 3-switch line with two tenant ingresses carrying ClassBench
/// firewall policies, cache tier enabled at `capacity` entries per
/// switch.
fn build_controller(seed: u64, policy: CachePolicy, capacity: usize) -> Controller {
    let mut topo = Topology::linear(3);
    topo.set_uniform_capacity(30);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            cache: CacheConfig {
                enabled: true,
                capacity,
                policy,
                ..CacheConfig::default()
            },
            ..CtrlOptions::default()
        },
    );
    let gen = Generator::new(Profile::Firewall, WIDTH).with_seed(seed);
    for ingress in 0..2usize {
        let egress = if ingress == 0 { 2 } else { 0 };
        let switches = if ingress == 0 {
            vec![SwitchId(0), SwitchId(1), SwitchId(2)]
        } else {
            vec![SwitchId(2), SwitchId(1), SwitchId(0)]
        };
        ctrl.submit(Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: gen.policy(5, ingress as u64),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(egress),
                switches,
            )],
        })
        .expect("queue has room");
    }
    ctrl.run_to_idle()
        .unwrap_or_else(|e| panic!("seed {seed}: install failed: {e}"));
    ctrl
}

fn traffic(seed: u64) -> TrafficConfig {
    TrafficConfig {
        seed,
        rate: 2_000,
        duration_ms: 50,
        zipf: 0.8 + (seed % 5) as f64 * 0.2,
        ingresses: 2,
        width: WIDTH,
        flows_per_ingress: 24,
        flowlet_len: 4,
        ..TrafficConfig::default()
    }
}

/// The tentpole property: 32 seeds × both eviction policies, tight
/// caches forced into heavy eviction churn, and every run must end with
/// zero dependency violations and both audits green — the cache never
/// introduces a false negative (a packet the policy drops crossing a
/// live route un-dropped).
#[test]
fn eviction_is_dependency_safe_for_32_seeds() {
    for seed in 0..32u64 {
        for policy in [CachePolicy::Lru, CachePolicy::DepFreq] {
            // 2..=5 resident entries: small enough that closures collide
            // with capacity and cascades actually fire.
            let capacity = 2 + (seed % 4) as usize;
            let mut ctrl = build_controller(seed, policy, capacity);
            let flows = generate(&traffic(seed));
            let report = ctrl.process_flows(&flows);

            assert_eq!(report.flows, flows.len() as u64, "seed {seed}");
            assert_eq!(
                report.dep_violations, 0,
                "seed {seed} {policy} cap={capacity}: dependency violation: {report:?}"
            );
            ctrl.cache().audit().unwrap_or_else(|e| {
                panic!("seed {seed} {policy} cap={capacity}: structural audit: {e}")
            });
            ctrl.cache_fail_closed_audit().unwrap_or_else(|e| {
                panic!("seed {seed} {policy} cap={capacity}: fail-closed audit: {e}")
            });
            assert_eq!(ctrl.stats().cache_dep_violations, 0, "seed {seed}");
        }
    }
}

fn shield_entry(priority: u32, bits: &str, action: Action) -> TcamEntry {
    TcamEntry {
        priority,
        tags: BTreeSet::from([EntryPortId(0)]),
        match_field: Ternary::parse(bits).unwrap(),
        action,
    }
}

/// Negative control: the audits must actually catch the bug class the
/// invariant exists for. Evicting a higher-priority DROP while the
/// PERMIT it shadows stays resident turns a dropped packet into a
/// forwarded one — `force_evict_unsafe` plants exactly that state and
/// the structural audit must refuse it.
#[test]
fn audits_catch_a_stranded_shield() {
    use flowplace::ctrl::RuleCache;
    let mut cache = RuleCache::new(
        CacheConfig {
            enabled: true,
            capacity: 4,
            ..CacheConfig::default()
        },
        1,
    );
    cache.set_target(&[vec![
        shield_entry(2, "10**", Action::Drop),
        shield_entry(1, "****", Action::Permit),
    ]]);
    let s = SwitchId(0);
    let permit = cache
        .find_slot(s, |e| e.action == Action::Permit)
        .expect("permit slot exists");
    assert!(cache.insert(s, permit), "closure fits the capacity");
    cache.audit().expect("closure-pulled state is safe");

    let drop = cache
        .find_slot(s, |e| e.action == Action::Drop)
        .expect("drop slot exists");
    cache.force_evict_unsafe(s, drop);
    let err = cache.audit().expect_err("stranded PERMIT must be caught");
    assert!(
        err.contains("depends on evicted"),
        "unexpected reason: {err}"
    );
}

/// Controller-level negative control: the punt-as-drop fail-closed
/// audit (which re-runs the placement verifier over the materialized
/// cache tables) catches the same stranding end-to-end.
#[test]
fn fail_closed_audit_catches_unsafe_eviction_end_to_end() {
    let mut topo = Topology::linear(3);
    topo.set_uniform_capacity(10);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            cache: CacheConfig::parse_spec("lru:4").unwrap(),
            ..CtrlOptions::default()
        },
    );
    // A genuine shielded pair in the *deployed* tables: the PERMIT
    // carves an exception out of the low DROP, so the optimizer must
    // install it, and it is only correct while the high DROP sits above
    // it (a trailing permit-all would be elided as default-forward).
    ctrl.submit(Event::InstallPolicy {
        ingress: EntryPortId(0),
        policy: Policy::from_rules(vec![
            Rule::new(Ternary::parse("100*").unwrap(), Action::Drop, 3),
            Rule::new(Ternary::parse("10**").unwrap(), Action::Permit, 2),
            Rule::new(Ternary::parse("1***").unwrap(), Action::Drop, 1),
        ])
        .unwrap(),
        routes: vec![Route::new(
            EntryPortId(0),
            EntryPortId(2),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)],
        )],
    })
    .unwrap();
    ctrl.run_to_idle().unwrap();

    let flows = generate(&TrafficConfig {
        seed: 11,
        rate: 1_000,
        duration_ms: 100,
        ingresses: 1,
        width: 4,
        flows_per_ingress: 32,
        ..TrafficConfig::default()
    });
    ctrl.process_flows(&flows);
    ctrl.cache_fail_closed_audit()
        .expect("warmed state is safe");

    // Strand the PERMIT on every switch where the closure made the
    // shielded pair resident together (occupancy 2 = the DROP and the
    // PERMIT, safe-mode slots aside) by yanking just the DROP.
    let mut stranded = false;
    for s in 0..3 {
        let s = SwitchId(s);
        if ctrl.cache().occupancy(s) < 2 {
            continue;
        }
        if let Some(drop) = ctrl
            .cache()
            .find_slot(s, |e| e.action == Action::Drop && !e.is_safe_mode())
        {
            ctrl.cache_mut().force_evict_unsafe(s, drop);
            stranded = true;
        }
    }
    assert!(stranded, "the stream never warmed a shielded pair");
    assert!(
        ctrl.cache().audit().is_err() || ctrl.cache_fail_closed_audit().is_err(),
        "unsafe eviction slipped past both audits:\n{}",
        ctrl.cache().dump()
    );
}

/// Same seed, same stream, same bytes: the flow reports, the cache
/// residency dump, and the dataplane dump of two independent runs are
/// identical — the cache tier adds no hidden nondeterminism.
#[test]
fn same_seed_replays_byte_identically() {
    for seed in [0u64, 7, 19] {
        let run = |seed: u64| {
            let mut ctrl = build_controller(seed, CachePolicy::DepFreq, 3);
            let flows = generate(&traffic(seed));
            let first = ctrl.process_flows(&flows);
            let second = ctrl.process_flows(&flows);
            (
                format!("{first:?}|{second:?}"),
                ctrl.cache().dump(),
                ctrl.dataplane().dump(),
                ctrl.stats().to_string(),
            )
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "seed {seed}: flow reports diverged");
        assert_eq!(a.1, b.1, "seed {seed}: cache dumps diverged");
        assert_eq!(a.2, b.2, "seed {seed}: dataplane dumps diverged");
        assert_eq!(a.3, b.3, "seed {seed}: stats diverged");
    }
}

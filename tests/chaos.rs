//! Chaos tests for the fault-tolerant controller.
//!
//! Three layers of assurance, all fully deterministic:
//!
//! * a seeded property test: hundreds of randomized event streams, each
//!   under a randomized fault plan (install rejects, crashes,
//!   recoveries, capacity revocations), must end with the fail-closed
//!   audit green — no packet a policy drops may cross a live route
//!   un-dropped, no matter what the dataplane did;
//! * byte-identical replay of the committed chaos trace + fault
//!   schedule (`traces/chaos.trace` / `traces/chaos.faults`), pinning
//!   the same seed the CI `make chaos` target uses;
//! * queue-overflow backpressure stays observable and recoverable under
//!   load.

use flowplace::acl::{Action, Policy, Rule, Ternary};
use flowplace::ctrl::{
    parse_fault_schedule, Controller, CtrlOptions, Event, FaultKind, FaultPlan, RetryPolicy,
    ScheduledFault,
};
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 4;

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    let action = if rng.gen_bool(0.7) {
        Action::Drop
    } else {
        Action::Permit
    };
    Rule::new(Ternary::new(WIDTH, care, value), action, priority)
}

fn install(rng: &mut StdRng, ingress: usize, switches: Vec<usize>) -> Event {
    let egress = if ingress == 0 { 2 } else { 0 };
    let n = rng.gen_range(1..=4usize);
    let mut rules: Vec<Rule> = (0..n).map(|p| rand_rule(rng, p as u32 + 2)).collect();
    rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
    Event::InstallPolicy {
        ingress: EntryPortId(ingress),
        policy: Policy::from_rules(rules).expect("distinct priorities"),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

fn rand_event(rng: &mut StdRng, priority: &mut u32) -> Event {
    *priority += 1;
    let ingress = EntryPortId(rng.gen_range(0..2usize));
    let switch = SwitchId(rng.gen_range(0..3usize));
    match rng.gen_range(0..10u32) {
        0..=3 => Event::AddRule {
            ingress,
            rule: rand_rule(rng, *priority),
        },
        4 => Event::RemoveRule {
            ingress,
            rule: flowplace::acl::RuleId(rng.gen_range(0..4usize)),
        },
        5 => Event::CapacityChange {
            switch,
            capacity: rng.gen_range(2..10usize),
        },
        6 => Event::SwitchFail { switch },
        7 => Event::SwitchRecover { switch },
        8 => Event::Solve,
        _ => Event::Checkpoint,
    }
}

fn rand_plan(rng: &mut StdRng, seed: u64) -> FaultPlan {
    let mut schedule = Vec::new();
    for _ in 0..rng.gen_range(0..4usize) {
        let switch = SwitchId(rng.gen_range(0..3usize));
        let kind = match rng.gen_range(0..4u32) {
            0 => FaultKind::Crash { switch },
            1 => FaultKind::Recover { switch },
            2 => FaultKind::InstallReject {
                switch,
                count: rng.gen_range(1..6u64),
            },
            _ => FaultKind::CapacityRevoke {
                switch,
                capacity: rng.gen_range(0..6usize),
            },
        };
        schedule.push(ScheduledFault {
            epoch: rng.gen_range(1..5u64),
            kind,
        });
    }
    FaultPlan {
        seed,
        install_reject_rate: rng.gen_range(0..40u32) as f64 / 100.0,
        crash_rate: rng.gen_range(0..15u32) as f64 / 100.0,
        recover_rate: rng.gen_range(30..90u32) as f64 / 100.0,
        schedule,
    }
}

/// The tentpole property: whatever the dataplane does, a completed run
/// leaves zero DROP-coverage violations on every live route (safe-mode
/// drop-alls count as coverage).
#[test]
fn chaos_never_breaks_fail_closed() {
    for seed in 0..224u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A0_5000 ^ seed);
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(rng.gen_range(4..10usize));
        let options = CtrlOptions {
            batch_size: 4,
            verify_packets: 4,
            faults: rand_plan(&mut rng, seed),
            retry: RetryPolicy {
                max_attempts: rng.gen_range(1..4u32),
                ..RetryPolicy::default()
            },
            quarantine_after: rng.gen_range(1..4u32),
            ..CtrlOptions::default()
        };
        let mut ctrl = Controller::new(topo, options);

        ctrl.submit(install(&mut rng, 0, vec![0, 1, 2]))
            .expect("queue has room");
        ctrl.submit(install(&mut rng, 1, vec![2, 1, 0]))
            .expect("queue has room");
        let mut priority = 10;
        for _ in 0..rng.gen_range(4..9usize) {
            ctrl.submit(rand_event(&mut rng, &mut priority))
                .expect("queue has room");
        }

        let reports = ctrl
            .run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e}"));
        assert!(!reports.is_empty(), "seed {seed}: no epochs ran");
        assert_eq!(
            ctrl.stats().failclosed_violations,
            0,
            "seed {seed}: a commit left a fail-closed violation"
        );
        ctrl.fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: final audit failed: {e}"));
    }
}

const TRACE: &str = include_str!("../traces/chaos.trace");
const FAULTS: &str = include_str!("../traces/chaos.faults");

/// Mirrors the `make chaos` CLI invocation documented in the trace
/// header.
fn chaos_controller() -> Controller {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(16);
    let options = CtrlOptions {
        batch_size: 4,
        faults: FaultPlan {
            seed: 42,
            install_reject_rate: 0.1,
            crash_rate: 0.02,
            recover_rate: 0.5,
            schedule: parse_fault_schedule(FAULTS).expect("committed schedule parses"),
        },
        ..CtrlOptions::default()
    };
    Controller::new(topo, options)
}

fn replay_chaos() -> (String, String, String, u64) {
    let mut ctrl = chaos_controller();
    let reports = ctrl.replay_trace(TRACE).expect("chaos trace replays");
    ctrl.fail_closed_audit().expect("audit green after chaos");
    assert_eq!(ctrl.stats().failclosed_violations, 0);
    (
        format!("{reports:?}"),
        ctrl.dataplane().dump(),
        ctrl.stats().to_string(),
        ctrl.virtual_time_ms(),
    )
}

/// The committed chaos replay is byte-for-byte deterministic: same
/// trace, same schedule, same seed — identical epoch reports, dataplane
/// dump, counters, and virtual clock.
#[test]
fn chaos_trace_replay_is_byte_identical() {
    let first = replay_chaos();
    let second = replay_chaos();
    assert_eq!(first.0, second.0, "epoch report sequences diverged");
    assert_eq!(first.1, second.1, "dataplane dumps diverged");
    assert_eq!(first.2, second.2, "stats diverged");
    assert_eq!(first.3, second.3, "virtual clocks diverged");
}

/// The committed chaos run actually exercises the machinery it claims
/// to: faults fire, installs retry, a breaker trips, and reconciliation
/// repairs the dataplane.
#[test]
fn chaos_trace_is_a_real_workout() {
    let mut ctrl = chaos_controller();
    ctrl.replay_trace(TRACE).expect("chaos trace replays");
    let stats = ctrl.stats();
    assert!(stats.faults_injected >= 10, "too tame: {stats:?}");
    assert!(stats.install_retries >= 1, "no retries fired: {stats:?}");
    assert!(stats.quarantines >= 1, "no breaker tripped: {stats:?}");
    assert!(stats.switch_crashes >= 1, "no crash seen: {stats:?}");
    assert!(stats.switch_recoveries >= 1, "no recovery seen: {stats:?}");
    assert!(stats.reconcile_runs >= 1, "nothing reconciled: {stats:?}");
}

/// Cache tier under fire: a switch crashes in the middle of a warmed
/// flow stream (mid-eviction churn, tiny cache), recovers, and the
/// stream resumes. Degradation must be fail-closed the whole way —
/// flows across the crashed switch count as unrouted rather than
/// consulting a dead cache, the dependency audit stays green through
/// the safe-mode fencing and the recovery re-sync, and no eviction ever
/// strands a shield.
#[test]
fn cache_stays_dependency_safe_across_switch_crash() {
    use flowplace::ctrl::{CacheConfig, CachePolicy};
    use flowplace::traffic::{generate, TrafficConfig};

    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xCAC4E ^ seed);
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(8);
        let policy = if seed % 2 == 0 {
            CachePolicy::Lru
        } else {
            CachePolicy::DepFreq
        };
        let mut ctrl = Controller::new(
            topo,
            CtrlOptions {
                cache: CacheConfig {
                    enabled: true,
                    // 2–3 entries: eviction churn on every phase.
                    capacity: 2 + (seed % 2) as usize,
                    policy,
                    ..CacheConfig::default()
                },
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
        ctrl.submit(install(&mut rng, 1, vec![2, 1, 0])).unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: install failed: {e}"));

        let stream = |s: u64| {
            generate(&TrafficConfig {
                seed: s,
                rate: 1_000,
                duration_ms: 50,
                ingresses: 2,
                width: WIDTH,
                flows_per_ingress: 16,
                ..TrafficConfig::default()
            })
        };

        // Warm phase, then the crash lands mid-churn.
        let warm = ctrl.process_flows(&stream(seed));
        assert!(warm.lookups > 0, "seed {seed}: stream never looked up");
        let victim = SwitchId(rng.gen_range(0..3usize));
        ctrl.submit(Event::SwitchFail { switch: victim }).unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: crash epoch failed: {e}"));

        // Degraded phase: flows whose route crosses the dead switch
        // must be unrouted, never served from a stale cache.
        let degraded = ctrl.process_flows(&stream(seed ^ 0xBEEF));
        assert_eq!(
            degraded.dep_violations, 0,
            "seed {seed}: violation while degraded"
        );
        ctrl.cache()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: degraded structural audit: {e}"));
        ctrl.cache_fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: degraded fail-closed audit: {e}"));

        // Recovery re-syncs the cache target; the invariant must hold
        // again with traffic flowing.
        ctrl.submit(Event::SwitchRecover { switch: victim })
            .unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: recovery epoch failed: {e}"));
        let recovered = ctrl.process_flows(&stream(seed ^ 0xF00D));
        assert_eq!(recovered.dep_violations, 0, "seed {seed}");
        assert_eq!(ctrl.stats().cache_dep_violations, 0, "seed {seed}");
        ctrl.cache()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: recovered structural audit: {e}"));
        ctrl.cache_fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: recovered fail-closed audit: {e}"));
        ctrl.fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: final audit failed: {e}"));
    }
}

/// Backpressure under overload stays observable (counted, reported) and
/// recoverable: once the queue drains, new submissions are accepted
/// again and the run still ends fail-closed.
#[test]
fn backpressure_is_observable_and_recoverable() {
    let mut topo = Topology::linear(3);
    topo.set_uniform_capacity(8);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            queue_capacity: 3,
            batch_size: 2,
            ..CtrlOptions::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
    ctrl.submit(Event::Solve).unwrap();
    ctrl.submit(Event::Checkpoint).unwrap();
    // Queue full: the next submissions bounce, visibly.
    for expected in 1..=3u64 {
        assert!(ctrl.submit(Event::Solve).is_err(), "overflow accepted");
        assert_eq!(ctrl.stats().events_rejected, expected);
    }
    assert_eq!(ctrl.pending(), 3, "rejected events must not enqueue");

    // Draining restores service; rejects are a counter, not a latch.
    ctrl.run_to_idle().unwrap();
    assert_eq!(ctrl.pending(), 0);
    ctrl.submit(Event::Solve)
        .expect("queue drained, room again");
    ctrl.run_to_idle().unwrap();
    assert_eq!(ctrl.stats().events_rejected, 3);
    assert_eq!(ctrl.stats().failclosed_violations, 0);
}

//! Chaos tests for the fault-tolerant controller.
//!
//! Three layers of assurance, all fully deterministic:
//!
//! * a seeded property test: hundreds of randomized event streams, each
//!   under a randomized fault plan (install rejects, crashes,
//!   recoveries, capacity revocations), must end with the fail-closed
//!   audit green — no packet a policy drops may cross a live route
//!   un-dropped, no matter what the dataplane did;
//! * byte-identical replay of the committed chaos trace + fault
//!   schedule (`traces/chaos.trace` / `traces/chaos.faults`), pinning
//!   the same seed the CI `make chaos` target uses;
//! * queue-overflow backpressure stays observable and recoverable under
//!   load.

use flowplace::acl::{Action, Policy, Rule, Ternary};
use flowplace::ctrl::{
    parse_fault_schedule, Controller, CtrlOptions, CtrlStats, DelegationConfig, Event, FaultKind,
    FaultPlan, RetryPolicy, ScheduledFault,
};
use flowplace::prelude::*;
use flowplace::rng::{Rng, StdRng};

const WIDTH: u32 = 4;

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let care = rng.gen_range(0u128..(1 << WIDTH));
    let value = rng.gen_range(0u128..(1 << WIDTH));
    let action = if rng.gen_bool(0.7) {
        Action::Drop
    } else {
        Action::Permit
    };
    Rule::new(Ternary::new(WIDTH, care, value), action, priority)
}

fn install(rng: &mut StdRng, ingress: usize, switches: Vec<usize>) -> Event {
    let egress = if ingress == 0 { 2 } else { 0 };
    let n = rng.gen_range(1..=4usize);
    let mut rules: Vec<Rule> = (0..n).map(|p| rand_rule(rng, p as u32 + 2)).collect();
    rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
    Event::InstallPolicy {
        ingress: EntryPortId(ingress),
        policy: Policy::from_rules(rules).expect("distinct priorities"),
        routes: vec![Route::new(
            EntryPortId(ingress),
            EntryPortId(egress),
            switches.into_iter().map(SwitchId).collect(),
        )],
    }
}

fn rand_event(rng: &mut StdRng, priority: &mut u32) -> Event {
    *priority += 1;
    let ingress = EntryPortId(rng.gen_range(0..2usize));
    let switch = SwitchId(rng.gen_range(0..3usize));
    match rng.gen_range(0..10u32) {
        0..=3 => Event::AddRule {
            ingress,
            rule: rand_rule(rng, *priority),
        },
        4 => Event::RemoveRule {
            ingress,
            rule: flowplace::acl::RuleId(rng.gen_range(0..4usize)),
        },
        5 => Event::CapacityChange {
            switch,
            capacity: rng.gen_range(2..10usize),
        },
        6 => Event::SwitchFail { switch },
        7 => Event::SwitchRecover { switch },
        8 => Event::Solve,
        _ => Event::Checkpoint,
    }
}

fn rand_plan(rng: &mut StdRng, seed: u64) -> FaultPlan {
    let mut schedule = Vec::new();
    for _ in 0..rng.gen_range(0..4usize) {
        let switch = SwitchId(rng.gen_range(0..3usize));
        let kind = match rng.gen_range(0..4u32) {
            0 => FaultKind::Crash { switch },
            1 => FaultKind::Recover { switch },
            2 => FaultKind::InstallReject {
                switch,
                count: rng.gen_range(1..6u64),
            },
            _ => FaultKind::CapacityRevoke {
                switch,
                capacity: rng.gen_range(0..6usize),
            },
        };
        schedule.push(ScheduledFault {
            epoch: rng.gen_range(1..5u64),
            kind,
        });
    }
    FaultPlan {
        seed,
        install_reject_rate: rng.gen_range(0..40u32) as f64 / 100.0,
        crash_rate: rng.gen_range(0..15u32) as f64 / 100.0,
        recover_rate: rng.gen_range(30..90u32) as f64 / 100.0,
        schedule,
    }
}

/// The tentpole property: whatever the dataplane does, a completed run
/// leaves zero DROP-coverage violations on every live route (safe-mode
/// drop-alls count as coverage).
#[test]
fn chaos_never_breaks_fail_closed() {
    for seed in 0..224u64 {
        let mut rng = StdRng::seed_from_u64(0xC4A0_5000 ^ seed);
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(rng.gen_range(4..10usize));
        let options = CtrlOptions {
            batch_size: 4,
            verify_packets: 4,
            faults: rand_plan(&mut rng, seed),
            retry: RetryPolicy {
                max_attempts: rng.gen_range(1..4u32),
                ..RetryPolicy::default()
            },
            quarantine_after: rng.gen_range(1..4u32),
            ..CtrlOptions::default()
        };
        let mut ctrl = Controller::new(topo, options);

        ctrl.submit(install(&mut rng, 0, vec![0, 1, 2]))
            .expect("queue has room");
        ctrl.submit(install(&mut rng, 1, vec![2, 1, 0]))
            .expect("queue has room");
        let mut priority = 10;
        for _ in 0..rng.gen_range(4..9usize) {
            ctrl.submit(rand_event(&mut rng, &mut priority))
                .expect("queue has room");
        }

        let reports = ctrl
            .run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: run failed: {e}"));
        assert!(!reports.is_empty(), "seed {seed}: no epochs ran");
        assert_eq!(
            ctrl.stats().failclosed_violations,
            0,
            "seed {seed}: a commit left a fail-closed violation"
        );
        ctrl.fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: final audit failed: {e}"));
    }
}

const TRACE: &str = include_str!("../traces/chaos.trace");
const FAULTS: &str = include_str!("../traces/chaos.faults");

/// Mirrors the `make chaos` CLI invocation documented in the trace
/// header.
fn chaos_controller() -> Controller {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(16);
    let options = CtrlOptions {
        batch_size: 4,
        faults: FaultPlan {
            seed: 42,
            install_reject_rate: 0.1,
            crash_rate: 0.02,
            recover_rate: 0.5,
            schedule: parse_fault_schedule(FAULTS).expect("committed schedule parses"),
        },
        ..CtrlOptions::default()
    };
    Controller::new(topo, options)
}

fn replay_chaos() -> (String, String, String, u64) {
    let mut ctrl = chaos_controller();
    let reports = ctrl.replay_trace(TRACE).expect("chaos trace replays");
    ctrl.fail_closed_audit().expect("audit green after chaos");
    assert_eq!(ctrl.stats().failclosed_violations, 0);
    (
        format!("{reports:?}"),
        ctrl.dataplane().dump(),
        ctrl.stats().to_string(),
        ctrl.virtual_time_ms(),
    )
}

/// The committed chaos replay is byte-for-byte deterministic: same
/// trace, same schedule, same seed — identical epoch reports, dataplane
/// dump, counters, and virtual clock.
#[test]
fn chaos_trace_replay_is_byte_identical() {
    let first = replay_chaos();
    let second = replay_chaos();
    assert_eq!(first.0, second.0, "epoch report sequences diverged");
    assert_eq!(first.1, second.1, "dataplane dumps diverged");
    assert_eq!(first.2, second.2, "stats diverged");
    assert_eq!(first.3, second.3, "virtual clocks diverged");
}

/// The committed chaos run actually exercises the machinery it claims
/// to: faults fire, installs retry, a breaker trips, and reconciliation
/// repairs the dataplane.
#[test]
fn chaos_trace_is_a_real_workout() {
    let mut ctrl = chaos_controller();
    ctrl.replay_trace(TRACE).expect("chaos trace replays");
    let stats = ctrl.stats();
    assert!(stats.faults_injected >= 10, "too tame: {stats:?}");
    assert!(stats.install_retries >= 1, "no retries fired: {stats:?}");
    assert!(stats.quarantines >= 1, "no breaker tripped: {stats:?}");
    assert!(stats.switch_crashes >= 1, "no crash seen: {stats:?}");
    assert!(stats.switch_recoveries >= 1, "no recovery seen: {stats:?}");
    assert!(stats.reconcile_runs >= 1, "nothing reconciled: {stats:?}");
}

/// Cache tier under fire: a switch crashes in the middle of a warmed
/// flow stream (mid-eviction churn, tiny cache), recovers, and the
/// stream resumes. Degradation must be fail-closed the whole way —
/// flows across the crashed switch count as unrouted rather than
/// consulting a dead cache, the dependency audit stays green through
/// the safe-mode fencing and the recovery re-sync, and no eviction ever
/// strands a shield.
#[test]
fn cache_stays_dependency_safe_across_switch_crash() {
    use flowplace::ctrl::{CacheConfig, CachePolicy};
    use flowplace::traffic::{generate, TrafficConfig};

    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xCAC4E ^ seed);
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(8);
        let policy = if seed % 2 == 0 {
            CachePolicy::Lru
        } else {
            CachePolicy::DepFreq
        };
        let mut ctrl = Controller::new(
            topo,
            CtrlOptions {
                cache: CacheConfig {
                    enabled: true,
                    // 2–3 entries: eviction churn on every phase.
                    capacity: 2 + (seed % 2) as usize,
                    policy,
                    ..CacheConfig::default()
                },
                ..CtrlOptions::default()
            },
        );
        ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
        ctrl.submit(install(&mut rng, 1, vec![2, 1, 0])).unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: install failed: {e}"));

        let stream = |s: u64| {
            generate(&TrafficConfig {
                seed: s,
                rate: 1_000,
                duration_ms: 50,
                ingresses: 2,
                width: WIDTH,
                flows_per_ingress: 16,
                ..TrafficConfig::default()
            })
        };

        // Warm phase, then the crash lands mid-churn.
        let warm = ctrl.process_flows(&stream(seed));
        assert!(warm.lookups > 0, "seed {seed}: stream never looked up");
        let victim = SwitchId(rng.gen_range(0..3usize));
        ctrl.submit(Event::SwitchFail { switch: victim }).unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: crash epoch failed: {e}"));

        // Degraded phase: flows whose route crosses the dead switch
        // must be unrouted, never served from a stale cache.
        let degraded = ctrl.process_flows(&stream(seed ^ 0xBEEF));
        assert_eq!(
            degraded.dep_violations, 0,
            "seed {seed}: violation while degraded"
        );
        ctrl.cache()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: degraded structural audit: {e}"));
        ctrl.cache_fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: degraded fail-closed audit: {e}"));

        // Recovery re-syncs the cache target; the invariant must hold
        // again with traffic flowing.
        ctrl.submit(Event::SwitchRecover { switch: victim })
            .unwrap();
        ctrl.run_to_idle()
            .unwrap_or_else(|e| panic!("seed {seed}: recovery epoch failed: {e}"));
        let recovered = ctrl.process_flows(&stream(seed ^ 0xF00D));
        assert_eq!(recovered.dep_violations, 0, "seed {seed}");
        assert_eq!(ctrl.stats().cache_dep_violations, 0, "seed {seed}");
        ctrl.cache()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: recovered structural audit: {e}"));
        ctrl.cache_fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: recovered fail-closed audit: {e}"));
        ctrl.fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: final audit failed: {e}"));
    }
}

/// One cell of the fault × pressure matrix: a star topology (hub s0,
/// leaves s1..s4 — so s3/s4 are off-route delegation candidates), two
/// ingresses routed through the hub, then a seed-selected combination
/// of capacity-revocation storm intensity, delegate crash/recover, and
/// cache-enabled traffic replay. Returns a replay fingerprint plus the
/// final counters and safe-mode census.
fn matrix_run(seed: u64, delegation_on: bool) -> (String, CtrlStats, usize) {
    let storm = seed % 3; // revocation intensity
    let crash = (seed / 3) % 2 == 1; // crash/recover the delegate
    let cache_on = (seed / 6) % 2 == 1; // cache-enabled traffic replay
    let mut rng = StdRng::seed_from_u64(0xDE1E_6000 ^ seed);

    let mut topo = Topology::star(4);
    topo.set_uniform_capacity(4);
    let mut options = CtrlOptions {
        batch_size: 4,
        verify_packets: 4,
        delegation: DelegationConfig {
            enabled: delegation_on,
        },
        ..CtrlOptions::default()
    };
    if cache_on {
        options.cache = flowplace::ctrl::CacheConfig {
            enabled: true,
            capacity: 2,
            ..flowplace::ctrl::CacheConfig::default()
        };
    }
    let mut ctrl = Controller::new(topo, options);
    let mut reports = Vec::new();

    // Five billable DROP entries per ingress: 10 total against the 12
    // on-route slots of s1-s0-s2 — tight, not yet over.
    let pressure_install = |ingress: usize, switches: Vec<usize>| {
        let mut rules: Vec<Rule> = (0..5)
            .map(|i| {
                Rule::new(
                    Ternary::new(WIDTH, (1 << WIDTH) - 1, i as u128 + 8),
                    Action::Drop,
                    i as u32 + 2,
                )
            })
            .collect();
        rules.push(Rule::new(Ternary::new(WIDTH, 0, 0), Action::Permit, 1));
        Event::InstallPolicy {
            ingress: EntryPortId(ingress),
            policy: Policy::from_rules(rules).expect("distinct priorities"),
            routes: vec![Route::new(
                EntryPortId(ingress),
                EntryPortId(ingress ^ 1),
                switches.into_iter().map(SwitchId).collect(),
            )],
        }
    };
    ctrl.submit(pressure_install(0, vec![1, 0, 2])).unwrap();
    ctrl.submit(pressure_install(1, vec![2, 0, 1])).unwrap();
    reports.extend(ctrl.run_to_idle().expect("install epoch"));

    // Revocation storm on the shared hub (and a leaf when harsh).
    let revocations: &[(usize, usize)] = match storm {
        0 => &[(0, 2)],
        1 => &[(0, 0)],
        _ => &[(0, 0), (1, 2)],
    };
    for &(switch, capacity) in revocations {
        ctrl.submit(Event::CapacityChange {
            switch: SwitchId(switch),
            capacity,
        })
        .unwrap();
        reports.extend(
            ctrl.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed}: storm epoch: {e}")),
        );
    }

    if crash {
        // s3 is the deterministic first-choice delegate; killing it
        // forces a re-home (or clean teardown) when delegation is on,
        // and is a harmless off-route crash when it is off.
        ctrl.submit(Event::SwitchFail {
            switch: SwitchId(3),
        })
        .unwrap();
        reports.extend(
            ctrl.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed}: crash epoch: {e}")),
        );
        ctrl.submit(Event::SwitchRecover {
            switch: SwitchId(3),
        })
        .unwrap();
        reports.extend(
            ctrl.run_to_idle()
                .unwrap_or_else(|e| panic!("seed {seed}: recover epoch: {e}")),
        );
    }

    if cache_on {
        let flows = flowplace::traffic::generate(&flowplace::traffic::TrafficConfig {
            seed: rng.gen_range(0..1_000u64),
            rate: 1_000,
            duration_ms: 30,
            ingresses: 2,
            width: WIDTH,
            flows_per_ingress: 8,
            ..flowplace::traffic::TrafficConfig::default()
        });
        ctrl.process_flows(&flows);
        ctrl.cache()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: cache audit: {e}"));
        ctrl.cache_fail_closed_audit()
            .unwrap_or_else(|e| panic!("seed {seed}: cache fail-closed audit: {e}"));
    }

    assert_eq!(
        ctrl.stats().failclosed_violations,
        0,
        "seed {seed}: fail-closed violated (delegation={delegation_on})"
    );
    ctrl.fail_closed_audit()
        .unwrap_or_else(|e| panic!("seed {seed}: final audit (delegation={delegation_on}): {e}"));

    let fingerprint = format!(
        "{reports:?}\n{}\n{}\n{}",
        ctrl.dataplane().dump(),
        ctrl.stats(),
        ctrl.virtual_time_ms()
    );
    let safe = ctrl.safe_mode_ingresses().len();
    (fingerprint, ctrl.stats().clone(), safe)
}

/// The fault × pressure chaos matrix: 36 seeds spanning revocation
/// storms × delegate crash/recover × cache traffic replay. Every cell
/// must stay fail-closed and replay byte-identically; delegation must
/// actually fire across the matrix and never fail more closed than the
/// rung-less baseline under the identical schedule — strictly less in
/// aggregate.
#[test]
fn delegation_matrix_is_fail_closed_and_deterministic() {
    let mut delegations_total = 0u64;
    let mut safe_with = 0usize;
    let mut safe_without = 0usize;
    for seed in 0..36u64 {
        let (fp_a, stats_on, safe_on) = matrix_run(seed, true);
        let (fp_b, _, _) = matrix_run(seed, true);
        assert_eq!(fp_a, fp_b, "seed {seed}: replay is not byte-identical");
        let (_, _, safe_off) = matrix_run(seed, false);
        assert!(
            safe_on <= safe_off,
            "seed {seed}: delegation made degradation worse ({safe_on} > {safe_off})"
        );
        delegations_total += stats_on.delegations;
        safe_with += safe_on;
        safe_without += safe_off;
    }
    assert!(
        delegations_total > 0,
        "the matrix never exercised the delegation rung"
    );
    assert!(
        safe_with < safe_without,
        "delegation should strictly reduce drop-all across the matrix \
         ({safe_with} vs {safe_without})"
    );
}

/// Capacity-revocation edge cases (each settles fail-closed and replays
/// byte-identically): revoke-to-zero mid-epoch, revoke landing in the
/// same batch as a staged-but-uncommitted install, and revoke on a
/// quarantined switch.
#[test]
fn capacity_revocation_edge_cases_settle_fail_closed() {
    let run = |scenario: usize| {
        let mut rng = StdRng::seed_from_u64(0xCA9_0000 ^ scenario as u64);
        let mut topo = Topology::linear(3);
        topo.set_uniform_capacity(4);
        let mut ctrl = Controller::new(
            topo,
            CtrlOptions {
                batch_size: 4,
                verify_packets: 4,
                ..CtrlOptions::default()
            },
        );
        let mut reports = Vec::new();
        match scenario {
            0 => {
                // Revoke-to-zero mid-epoch: the shrink lands in the
                // middle of a batch, between two rule adds.
                ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
                reports.extend(ctrl.run_to_idle().unwrap());
                ctrl.submit(Event::AddRule {
                    ingress: EntryPortId(0),
                    rule: rand_rule(&mut rng, 20),
                })
                .unwrap();
                ctrl.submit(Event::CapacityChange {
                    switch: SwitchId(1),
                    capacity: 0,
                })
                .unwrap();
                ctrl.submit(Event::AddRule {
                    ingress: EntryPortId(0),
                    rule: rand_rule(&mut rng, 21),
                })
                .unwrap();
            }
            1 => {
                // Revoke during a staged-but-uncommitted transaction:
                // the install stages entries in the same epoch's
                // working state, then the revoke yanks the capacity
                // before anything commits.
                ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
                ctrl.submit(Event::CapacityChange {
                    switch: SwitchId(1),
                    capacity: 0,
                })
                .unwrap();
            }
            _ => {
                // Revoke on a quarantined switch: the crash makes s1
                // unmanageable, the revoke must park in saved_capacity
                // and apply on recovery, never resurrecting the old
                // bank.
                ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
                reports.extend(ctrl.run_to_idle().unwrap());
                ctrl.submit(Event::SwitchFail {
                    switch: SwitchId(1),
                })
                .unwrap();
                reports.extend(ctrl.run_to_idle().unwrap());
                ctrl.submit(Event::CapacityChange {
                    switch: SwitchId(1),
                    capacity: 1,
                })
                .unwrap();
                reports.extend(ctrl.run_to_idle().unwrap());
                ctrl.submit(Event::SwitchRecover {
                    switch: SwitchId(1),
                })
                .unwrap();
            }
        }
        reports.extend(ctrl.run_to_idle().unwrap());
        assert_eq!(
            ctrl.stats().failclosed_violations,
            0,
            "scenario {scenario}: violation"
        );
        ctrl.fail_closed_audit()
            .unwrap_or_else(|e| panic!("scenario {scenario}: audit: {e}"));
        format!("{reports:?}\n{}\n{}", ctrl.dataplane().dump(), ctrl.stats())
    };
    for scenario in 0..3usize {
        assert_eq!(
            run(scenario),
            run(scenario),
            "scenario {scenario}: replay diverged"
        );
    }
}

/// Backpressure under overload stays observable (counted, reported) and
/// recoverable: once the queue drains, new submissions are accepted
/// again and the run still ends fail-closed.
#[test]
fn backpressure_is_observable_and_recoverable() {
    let mut topo = Topology::linear(3);
    topo.set_uniform_capacity(8);
    let mut ctrl = Controller::new(
        topo,
        CtrlOptions {
            queue_capacity: 3,
            batch_size: 2,
            ..CtrlOptions::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(9);
    ctrl.submit(install(&mut rng, 0, vec![0, 1, 2])).unwrap();
    ctrl.submit(Event::Solve).unwrap();
    ctrl.submit(Event::Checkpoint).unwrap();
    // Queue full: the next submissions bounce, visibly.
    for expected in 1..=3u64 {
        assert!(ctrl.submit(Event::Solve).is_err(), "overflow accepted");
        assert_eq!(ctrl.stats().events_rejected, expected);
    }
    assert_eq!(ctrl.pending(), 3, "rejected events must not enqueue");

    // Draining restores service; rejects are a counter, not a latch.
    ctrl.run_to_idle().unwrap();
    assert_eq!(ctrl.pending(), 0);
    ctrl.submit(Event::Solve)
        .expect("queue drained, room again");
    ctrl.run_to_idle().unwrap();
    assert_eq!(ctrl.stats().events_rejected, 3);
    assert_eq!(ctrl.stats().failclosed_violations, 0);
}

// ---------------------------------------------------------------------
// Shard-aware fault isolation
// ---------------------------------------------------------------------

/// One tenant's placement slice, as comparable owned data.
fn placement_slice(
    ctrl: &Controller,
    ingress: EntryPortId,
) -> Vec<(flowplace::acl::RuleId, std::collections::BTreeSet<SwitchId>)> {
    ctrl.placement()
        .iter()
        .filter(|((l, _), _)| *l == ingress)
        .map(|((_, r), switches)| (*r, switches.clone()))
        .collect()
}

/// Builds the two-tenant, two-shard fixture: `l0` routed `s0-s1-s2`
/// (pinned to shard 0), `l1` routed `s3-s4-s5` (pinned to shard 1) on
/// `linear(6)`. `s0` is kept tiny so tenant 0 spills onto `s1` — the
/// switch the fault schedule targets — and the fault provably moves
/// entries.
fn isolation_run(
    schedule: Vec<flowplace::ctrl::ScheduledFault>,
) -> flowplace::ctrl::ShardedController {
    use flowplace::ctrl::{ShardSpec, ShardedController};

    let mut topo = Topology::linear(6);
    topo.set_uniform_capacity(32);
    topo.set_capacity(SwitchId(0), 2);
    let options = CtrlOptions {
        batch_size: 2,
        verify_packets: 4,
        faults: FaultPlan {
            schedule,
            ..FaultPlan::default()
        },
        ..CtrlOptions::default()
    };
    let spec = ShardSpec::new(2)
        .with_override(EntryPortId(0), 0)
        .with_override(EntryPortId(1), 1);
    let mut sharded = ShardedController::new(topo, options, spec);

    let mut rng = StdRng::seed_from_u64(0x150);
    let mut events = vec![
        install(&mut rng, 0, vec![0, 1, 2]),
        install(&mut rng, 1, vec![3, 4, 5]),
    ];
    for i in 0..8u32 {
        events.push(Event::AddRule {
            ingress: EntryPortId((i % 2) as usize),
            rule: rand_rule(&mut rng, 40 + i),
        });
    }
    events.push(Event::Solve);
    events.push(Event::Checkpoint);
    sharded
        .replay(events)
        .expect("isolation fixture replays clean");
    sharded
}

/// The cross-shard isolation property: a switch crash (or an
/// install-reject storm that ends in quarantine) inside shard 0 moves
/// tenant 0's entries but never perturbs shard 1's placement slice —
/// and the faulty run replays byte-identically.
#[test]
fn shard_fault_in_one_shard_never_perturbs_the_other() {
    let calm = isolation_run(vec![]);
    let calm_l0 = placement_slice(calm.inner(), EntryPortId(0));
    let calm_l1 = placement_slice(calm.inner(), EntryPortId(1));
    assert!(
        calm_l0.iter().any(|(_, sw)| sw.contains(&SwitchId(1))),
        "fixture must park tenant-0 entries on s1 for the fault to bite"
    );

    for (label, schedule) in [
        (
            "crash s1",
            vec![ScheduledFault {
                epoch: 3,
                kind: FaultKind::Crash {
                    switch: SwitchId(1),
                },
            }],
        ),
        (
            "install-reject storm on s1",
            vec![ScheduledFault {
                epoch: 3,
                kind: FaultKind::InstallReject {
                    switch: SwitchId(1),
                    count: 64,
                },
            }],
        ),
    ] {
        let faulty = isolation_run(schedule.clone());
        assert_ne!(
            calm_l0,
            placement_slice(faulty.inner(), EntryPortId(0)),
            "{label}: the fault must actually move tenant 0's entries"
        );
        assert_eq!(
            calm_l1,
            placement_slice(faulty.inner(), EntryPortId(1)),
            "{label}: shard 1's slice must be untouched by a shard-0 fault"
        );
        assert_eq!(faulty.coord_stats().overgrants, 0, "{label}");
        assert!(
            faulty.coord_stats().events_routed.iter().all(|&n| n > 0),
            "{label}: both shards must have seen traffic"
        );

        // Faults and all, the sharded run is deterministic: replaying
        // the identical schedule reproduces every observable byte.
        let again = isolation_run(schedule);
        assert_eq!(
            format!("{:?}", faulty.placement()),
            format!("{:?}", again.placement()),
            "{label}: placement replay diverged"
        );
        assert_eq!(
            faulty.stats().to_string(),
            again.stats().to_string(),
            "{label}: stats replay diverged"
        );
        assert_eq!(
            faulty.inner().dataplane().dump(),
            again.inner().dataplane().dump(),
            "{label}: dataplane replay diverged"
        );
        assert_eq!(
            format!("{:?}", faulty.last_arbiter()),
            format!("{:?}", again.last_arbiter()),
            "{label}: arbiter replay diverged"
        );
    }
}

//! Multi-tenant datacenter ACL deployment on a fat-tree.
//!
//! The scenario from the paper's introduction: a k=4 fat-tree datacenter
//! where every host (tenant ingress) carries its own ClassBench-style
//! firewall policy plus a network-wide blacklist shared by all tenants.
//! The optimizer places all policies at once, sharing blacklist rules
//! across tenants (§IV-B merging), and the result is verified end-to-end.
//!
//! Run with: `cargo run --release --example datacenter_acl`

use std::time::Duration;

use flowplace::classbench::{Generator, PolicySuite, Profile};
use flowplace::core::verify;
use flowplace::milp::MipOptions;
use flowplace::prelude::*;
use flowplace::routing::shortest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 4;
    let mut topo = Topology::fat_tree(k);
    topo.set_uniform_capacity(40);
    println!("{topo}");

    // Shortest-path routes: 2 destinations per tenant ingress (tenants
    // occupy the first half of the host ports).
    let tenants = topo.entry_port_count() / 2;
    let mut routes: RouteSet = shortest::routes_per_ingress(&topo, 2, 7)
        .iter()
        .filter(|r| r.ingress.0 < tenants)
        .cloned()
        .collect();
    flowplace::routing::assign_destination_flows(&mut routes, 16, 4);
    println!("routing: {} paths", routes.len());

    // Per-tenant policies (8 own rules each) + 3 shared blacklist rules.
    let generator = Generator::new(Profile::Firewall, 16).with_seed(11);
    let suite = PolicySuite::generate(&generator, 8, tenants, 3);
    println!(
        "policies: {} tenants x {} rules ({} shared blacklist rules)",
        suite.policies.len(),
        suite.policies[0].len(),
        suite.shared.len()
    );

    let policies: Vec<(EntryPortId, Policy)> = suite
        .policies
        .iter()
        .enumerate()
        .map(|(i, p)| (EntryPortId(i), p.clone()))
        .collect();
    let instance = Instance::new(topo, routes, policies)?;

    for (label, merging) in [("without merging", false), ("with merging", true)] {
        let placer = RulePlacer::new(PlacementOptions {
            merging,
            greedy_warm_start: true,
            mip: MipOptions {
                // Cap the search: a feasible-but-unproven answer is fine
                // for an interactive demo (the paper's CPLEX runs took up
                // to 30 minutes on the full-size analogs).
                time_limit: Some(Duration::from_secs(15)),
                ..MipOptions::default()
            },
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&instance, Objective::TotalRules)?;
        match &outcome.placement {
            None => println!("{label}: {}", outcome.status),
            Some(placement) => {
                println!(
                    "{label}: {} — {} rules installed, {:.1}% duplication overhead, \
                     {} merge groups, solved in {:?}",
                    outcome.status,
                    placement.total_rules(),
                    placement.duplication_overhead(&instance) * 100.0,
                    placement.merge_groups().len(),
                    outcome.stats.elapsed
                );
                verify::verify_placement(&instance, placement, 64, 5)?;
                println!("{label}: verification passed");
            }
        }
    }
    Ok(())
}

//! Firewall policy audit: redundancy removal, dependency analysis,
//! path-slicing statistics.
//!
//! The optional pre-passes of the paper's Figure 4 flow chart as a
//! standalone tool: generate (or imagine importing) a firewall policy,
//! strip redundant rules with an exact equivalence-preserving pass,
//! inspect the permit/drop dependency graph that drives placement, and
//! measure how much §IV-C path slicing shrinks the problem.
//!
//! Run with: `cargo run --example firewall_audit`

use flowplace::acl::redundancy;
use flowplace::classbench::{Generator, Profile};
use flowplace::core::{depgraph::DependencyGraph, slicing};
use flowplace::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = Generator::new(Profile::Firewall, 16).with_seed(17);
    let policy = generator.policy(40, 0);
    println!("generated policy: {} rules", policy.len());

    // Exact redundancy removal (all-match, refs [7-9] of the paper).
    let report = redundancy::remove_redundant(&policy);
    println!(
        "redundancy removal: {} rules removed, {} kept",
        report.removed_count(),
        report.policy.len()
    );
    for (id, rule, kind) in &report.removed {
        println!("  removed {id} {rule} ({kind:?})");
    }
    let policy = report.policy;

    // Dependency graph: what placing each DROP drags along.
    let graph = DependencyGraph::build(&policy);
    println!("{graph}");
    let mut heaviest: Vec<(RuleId, usize)> = policy
        .drop_rules()
        .map(|w| (w, graph.permits_required_by(w).len()))
        .collect();
    heaviest.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (w, n) in heaviest.iter().take(5) {
        println!("  {} drags {} permit shield(s)", policy.rule(*w), n);
    }

    // Graphviz export for documentation / review.
    let dot = graph.to_dot(&policy);
    println!(
        "dependency graph DOT export: {} bytes (pipe to `dot -Tsvg`)",
        dot.len()
    );

    // Path slicing: how many rules each route actually needs.
    let flows = ["0000", "0001", "0010", "0011"];
    println!("path slicing on destination sub-flows (low 4 bits):");
    for f in flows {
        let flow = Ternary::parse(&format!("************{f}"))?;
        let route = Route::new(EntryPortId(0), EntryPortId(1), vec![SwitchId(0)]).with_flow(flow);
        let kept = slicing::sliced_rules(&policy, &route).len();
        println!(
            "  flow dst={f}: {kept}/{} rules needed ({:.0}% sliced away)",
            policy.len(),
            100.0 * (1.0 - kept as f64 / policy.len() as f64)
        );
    }
    Ok(())
}

//! The controller runtime: placement as a long-lived event loop.
//!
//! Where `incremental_update` calls the §IV-E primitives by hand, this
//! example drives the [`flowplace::ctrl`] controller: events go into a
//! bounded queue, get batched into epochs, escalate greedy → restricted
//! → full as needed, and commit to a simulated TCAM dataplane with
//! make-before-break diffs — verified against the golden model at every
//! epoch.
//!
//! Run with: `cargo run --release --example controller_loop`

use flowplace::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(12);
    let mut ctrl = Controller::new(topo, CtrlOptions::default());

    // Two tenants come online, then a burst of rule updates. Everything
    // below is expressed in the text trace format, so the same stream
    // could replay from a file via `flowplace ctrl replay`.
    let trace = "\
# tenant A: drop a prefix, permit the rest, routed end to end
install-policy l0 via l1:s0-s1-s2-s3 rules 10**:drop:2,****:permit:1
# tenant B enters at the far end
install-policy l1 via l0:s3-s2-s1-s0 rules 01**:drop:2,****:permit:1

# urgent blacklist entries — the greedy tier handles these with no solver
add-rule l0 1111 drop 5
add-rule l1 0000 drop 5

# snapshot, then a risky change we decide to abandon
checkpoint
add-rule l0 01** drop 6
rollback

# the middle switch loses TCAM space; the controller re-solves only if
# the deployed load no longer fits
capacity s1 4
";

    let reports = ctrl.replay_trace(trace)?;
    for r in &reports {
        println!(
            "epoch {}: {} events, +{} -{} entries (peak {})",
            r.epoch,
            r.outcomes.len(),
            r.installed,
            r.removed,
            r.peak_occupancy
        );
        for (event, outcome) in &r.outcomes {
            println!("  {event}  =>  {outcome:?}");
        }
    }

    println!("\n{}", ctrl.stats());
    println!("dataplane after replay:\n{}", ctrl.dataplane().dump());
    assert_eq!(ctrl.stats().verify_failures, 0);
    Ok(())
}

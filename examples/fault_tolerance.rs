//! Fault tolerance: the controller versus a hostile dataplane.
//!
//! Where `controller_loop` assumes every TCAM write lands, this example
//! turns on the deterministic fault injector: installs bounce and are
//! retried with exponential backoff on a virtual clock, a switch
//! crashes mid-run and its ingresses are re-placed around it, a
//! persistent failure trips the circuit breaker into quarantine — and
//! through all of it the fail-closed audit stays green: a packet the
//! policy drops never crosses a live route un-dropped.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use flowplace::ctrl::{parse_fault_schedule, FaultPlan, RetryPolicy};
use flowplace::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(12);

    // Scripted faults fire at epoch boundaries; probabilistic rates
    // (seeded, liveness-independent draws) layer on top. Same plan +
    // same trace => byte-identical run, every time.
    let schedule = parse_fault_schedule(
        "\
@2 fault install-reject s0 2
@3 fault crash s2
@4 fault recover s2
@4 fault install-reject s0 9
",
    )?;
    let options = CtrlOptions {
        batch_size: 4,
        faults: FaultPlan {
            seed: 7,
            install_reject_rate: 0.05,
            schedule,
            ..FaultPlan::default()
        },
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        quarantine_after: 2,
        ..CtrlOptions::default()
    };
    let mut ctrl = Controller::new(topo, options);

    let trace = "\
# two tenants, routed in opposite directions
install-policy l0 via l1:s0-s1-s2-s3 rules 10**:drop:2,****:permit:1
install-policy l1 via l0:s3-s2-s1-s0 rules 01**:drop:2,****:permit:1

# blacklist churn rides through the scripted install-rejects
add-rule l0 1111 drop 5
add-rule l1 0000 drop 5
add-rule l0 1100 drop 6
add-rule l1 0011 drop 6

# more churn while s2 is down, then after it recovers
add-rule l0 1010 drop 7
add-rule l1 0101 drop 7
add-rule l0 1001 drop 8
add-rule l1 0110 drop 8

# the re-solve that finally trips s0's breaker into quarantine
add-rule l0 1011 drop 9
add-rule l1 0100 drop 9
solve
";

    let reports = ctrl.replay_trace(trace)?;
    for r in &reports {
        print!(
            "epoch {}: {} events, +{} -{} entries, {} faults",
            r.epoch,
            r.outcomes.len(),
            r.installed,
            r.removed,
            r.injected
        );
        if !r.quarantined.is_empty() {
            print!(", out of service {:?}", r.quarantined);
        }
        println!();
    }

    println!("\n{}", ctrl.stats());
    println!(
        "virtual time spent backing off: {}ms",
        ctrl.virtual_time_ms()
    );
    println!("dataplane after replay:\n{}", ctrl.dataplane().dump());

    // The whole point: whatever the dataplane did, the deployed state
    // never under-drops on a live route.
    ctrl.fail_closed_audit()
        .map_err(|e| format!("fail-closed audit: {e}"))?;
    assert_eq!(ctrl.stats().failclosed_violations, 0);
    println!("fail-closed audit: ok");
    Ok(())
}

//! Fault tolerance: the controller versus a hostile dataplane.
//!
//! Where `controller_loop` assumes every TCAM write lands, this example
//! turns on the deterministic fault injector: installs bounce and are
//! retried with exponential backoff on a virtual clock, a switch
//! crashes mid-run and its ingresses are re-placed around it, a
//! persistent failure trips the circuit breaker into quarantine — and
//! through all of it the fail-closed audit stays green: a packet the
//! policy drops never crosses a live route un-dropped.
//!
//! The second scenario is a capacity-revocation storm on a star: the
//! hub loses its whole TCAM mid-run, and the delegation rung
//! (DESIGN.md §14) detours the pressured ingress through an off-route
//! leaf with spare capacity instead of dropping it — the same storm
//! with `--delegation off` ends fail-closed in drop-all safe mode.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use flowplace::ctrl::{parse_fault_schedule, FaultPlan, RetryPolicy};
use flowplace::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::linear(4);
    topo.set_uniform_capacity(12);

    // Scripted faults fire at epoch boundaries; probabilistic rates
    // (seeded, liveness-independent draws) layer on top. Same plan +
    // same trace => byte-identical run, every time.
    let schedule = parse_fault_schedule(
        "\
@2 fault install-reject s0 2
@3 fault crash s2
@4 fault recover s2
@4 fault install-reject s0 9
",
    )?;
    let options = CtrlOptions {
        batch_size: 4,
        faults: FaultPlan {
            seed: 7,
            install_reject_rate: 0.05,
            schedule,
            ..FaultPlan::default()
        },
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        quarantine_after: 2,
        ..CtrlOptions::default()
    };
    let mut ctrl = Controller::new(topo, options);

    let trace = "\
# two tenants, routed in opposite directions
install-policy l0 via l1:s0-s1-s2-s3 rules 10**:drop:2,****:permit:1
install-policy l1 via l0:s3-s2-s1-s0 rules 01**:drop:2,****:permit:1

# blacklist churn rides through the scripted install-rejects
add-rule l0 1111 drop 5
add-rule l1 0000 drop 5
add-rule l0 1100 drop 6
add-rule l1 0011 drop 6

# more churn while s2 is down, then after it recovers
add-rule l0 1010 drop 7
add-rule l1 0101 drop 7
add-rule l0 1001 drop 8
add-rule l1 0110 drop 8

# the re-solve that finally trips s0's breaker into quarantine
add-rule l0 1011 drop 9
add-rule l1 0100 drop 9
solve
";

    let reports = ctrl.replay_trace(trace)?;
    for r in &reports {
        print!(
            "epoch {}: {} events, +{} -{} entries, {} faults",
            r.epoch,
            r.outcomes.len(),
            r.installed,
            r.removed,
            r.injected
        );
        if !r.quarantined.is_empty() {
            print!(", out of service {:?}", r.quarantined);
        }
        println!();
    }

    println!("\n{}", ctrl.stats());
    println!(
        "virtual time spent backing off: {}ms",
        ctrl.virtual_time_ms()
    );
    println!("dataplane after replay:\n{}", ctrl.dataplane().dump());

    // The whole point: whatever the dataplane did, the deployed state
    // never under-drops on a live route.
    ctrl.fail_closed_audit()
        .map_err(|e| format!("fail-closed audit: {e}"))?;
    assert_eq!(ctrl.stats().failclosed_violations, 0);
    println!("fail-closed audit: ok");

    capacity_storm_delegation()
}

/// A TCAM capacity storm the escalation ladder cannot absorb on-route:
/// the star's hub drops to zero entries, leaving the tenant's ten drop
/// rules with eight slots across its two remaining route switches. The
/// delegation rung parks the overflow on an idle off-route leaf behind
/// a reserved redirect stub; the identical storm with the rung disabled
/// degrades to drop-all instead. Both endings are fail-closed.
fn capacity_storm_delegation() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== capacity storm: delegation vs drop-all ===");
    let mut topo = Topology::star(4);
    topo.set_uniform_capacity(4);

    // One tenant routed leaf1 -> hub -> leaf2; leaves s3/s4 stay idle
    // off-route — exactly the spare TCAM delegation can borrow.
    let trace = "\
install-policy l0 via l1:s1-s0-s2 rules \
0000:drop:2,0001:drop:3,0010:drop:4,0011:drop:5,0100:drop:6,\
0101:drop:7,0110:drop:8,0111:drop:9,1000:drop:10,1001:drop:11,\
****:permit:1

# the storm: the hub's TCAM bank is revoked outright
capacity s0 0
";

    let mut delegated = Controller::new(topo.clone(), CtrlOptions::default());
    let reports = delegated.replay_trace(trace)?;
    for r in reports.iter().filter(|r| !r.delegated.is_empty()) {
        println!("epoch {}: delegated ingresses {:?}", r.epoch, r.delegated);
    }
    println!(
        "with the rung: {} delegation(s), {} entries parked off-route, \
         {} redirect stub(s), safe-mode ingresses {:?}",
        delegated.stats().delegations,
        delegated.delegated_entries(),
        delegated.stats().delegation_stub_entries,
        delegated.safe_mode_ingresses()
    );

    let mut baseline = Controller::new(topo, CtrlOptions::default());
    baseline.set_delegation_enabled(false);
    baseline.replay_trace(trace)?;
    println!(
        "without it:    safe-mode (drop-all) ingresses {:?}",
        baseline.safe_mode_ingresses()
    );

    // Both arms are fail-closed; only one of them still forwards.
    delegated
        .fail_closed_audit()
        .map_err(|e| format!("delegated fail-closed audit: {e}"))?;
    baseline
        .fail_closed_audit()
        .map_err(|e| format!("baseline fail-closed audit: {e}"))?;
    assert!(delegated.safe_mode_ingresses().is_empty());
    assert!(!baseline.safe_mode_ingresses().is_empty());
    println!("fail-closed audit: ok in both arms");
    Ok(())
}

//! Monitor-aware placement over full ECMP path sets, with 5-tuple rules.
//!
//! A realistic deployment combining three library features beyond the
//! paper's core evaluation:
//!
//! * policies written as IPv4 5-tuples (`flowplace::acl::fivetuple`),
//! * routing over *every* equal-cost shortest path (ECMP,
//!   `flowplace::routing::kshortest`) instead of one random path,
//! * a monitoring requirement (§VII future work): suspicious traffic
//!   must reach the IDS switch before any firewall rule may drop it.
//!
//! Run with: `cargo run --release --example monitored_ecmp`

use std::net::Ipv4Addr;

use flowplace::acl::fivetuple::{FiveTuple, Ports, Prefix, Protocol, FIVE_TUPLE_WIDTH};
use flowplace::acl::Rule;
use flowplace::core::monitor::MonitorRequirement;
use flowplace::core::verify;
use flowplace::prelude::*;
use flowplace::routing::kshortest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::fat_tree(4);
    topo.set_uniform_capacity(50);

    // ECMP: all equal-cost paths for four tenant→service pairs.
    let pairs: Vec<(EntryPortId, EntryPortId)> = (0..4)
        .map(|i| (EntryPortId(i), EntryPortId(12 + i)))
        .collect();
    let routes = kshortest::ecmp_routes(&topo, &pairs, 16);
    println!(
        "routing: {} ECMP paths across {} tenant pairs",
        routes.len(),
        pairs.len()
    );

    // Policies written as 5-tuples: permit HTTPS to the service subnet,
    // drop everything else toward it, and blacklist a bad /16.
    let service = Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24);
    let bad_actor = Prefix::new(Ipv4Addr::new(198, 51, 0, 0), 16);
    let mut policies = Vec::new();
    for i in 0..4 {
        let permit_https = FiveTuple {
            src: Prefix::any(),
            dst: service,
            src_ports: Ports::Any,
            dst_ports: Ports::Exact(443),
            protocol: Protocol::Tcp,
        };
        let drop_bad = FiveTuple {
            src: bad_actor,
            dst: Prefix::any(),
            src_ports: Ports::Any,
            dst_ports: Ports::Any,
            protocol: Protocol::Any,
        };
        let drop_rest = FiveTuple {
            src: Prefix::any(),
            dst: service,
            src_ports: Ports::Any,
            dst_ports: Ports::Range(0, 1023), // privileged ports only
            protocol: Protocol::Any,
        };
        let mut rules = Vec::new();
        let mut priority = 1000u32;
        for (spec, action) in [
            (permit_https, Action::Permit),
            (drop_bad, Action::Drop),
            (drop_rest, Action::Drop),
        ] {
            // A 5-tuple expands to one or more ternary TCAM cubes.
            for cube in spec.to_ternaries() {
                rules.push(Rule::new(cube, action, priority));
                priority -= 1;
            }
        }
        policies.push((EntryPortId(i), Policy::from_rules(rules)?));
    }
    println!(
        "policies: {} tenants, {} TCAM-expanded rules each (width {FIVE_TUPLE_WIDTH})",
        policies.len(),
        policies[0].1.len()
    );

    // The IDS lives on core switch 0: traffic from the bad /16 must reach
    // it before being dropped.
    let ids_switch = SwitchId(0);
    let monitored_flow = {
        let spec = FiveTuple {
            src: bad_actor,
            dst: Prefix::any(),
            src_ports: Ports::Any,
            dst_ports: Ports::Any,
            protocol: Protocol::Any,
        };
        spec.to_ternaries()[0]
    };

    let instance = Instance::new(topo, routes, policies)?;
    for (label, monitors) in [
        ("unconstrained", vec![]),
        (
            "IDS-monitored",
            vec![MonitorRequirement::new(ids_switch, monitored_flow)],
        ),
    ] {
        let placer = RulePlacer::new(PlacementOptions {
            monitors,
            greedy_warm_start: true,
            ..PlacementOptions::default()
        });
        let outcome = placer.place(&instance, Objective::TotalRules)?;
        match outcome.placement {
            None => println!("{label}: {}", outcome.status),
            Some(p) => {
                verify::verify_placement(&instance, &p, 64, 3)?;
                // Where did blacklist drops land relative to the IDS?
                let mut upstream = 0usize;
                for ((ingress, rule), switches) in p.iter() {
                    let r = instance.policy(*ingress).unwrap().rule(*rule);
                    if !r.action().is_drop() || !r.match_field().intersects(&monitored_flow) {
                        continue;
                    }
                    for &s in switches {
                        for rid in instance.routes().paths_from(*ingress) {
                            let route = instance.routes().route(rid);
                            if let (Some(sp), Some(mp)) =
                                (route.position_of(s), route.position_of(ids_switch))
                            {
                                if sp < mp {
                                    upstream += 1;
                                }
                            }
                        }
                    }
                }
                println!(
                    "{label}: {} — {} rules installed, {} blacklist placements upstream of the IDS, verified",
                    outcome.status,
                    p.total_rules(),
                    upstream
                );
            }
        }
    }
    Ok(())
}

//! Incremental deployment: tenants join, routes change, rules arrive.
//!
//! Reproduces the paper's §IV-E workflow: solve the initial configuration
//! with the full ILP, then handle updates in milliseconds against the
//! spare capacity — new tenant policies via a restricted sub-ILP, a
//! routing change via per-policy re-placement, and a single security rule
//! via the ingress-first greedy heuristic.
//!
//! Run with: `cargo run --release --example incremental_update`

use flowplace::classbench::{Generator, Profile};
use flowplace::core::{incremental, verify};
use flowplace::prelude::*;
use flowplace::routing::shortest;
use flowplace_rng::StdRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::fat_tree(4);
    topo.set_uniform_capacity(30);
    let n_hosts = topo.entry_port_count();

    // Initial configuration: half the hosts are active tenants.
    let generator = Generator::new(Profile::Acl, 16).with_seed(3);
    let mut routes = RouteSet::new();
    let mut rng = StdRng::seed_from_u64(21);
    let mut policies = Vec::new();
    for i in 0..n_hosts / 2 {
        let ingress = EntryPortId(i);
        for egress in [EntryPortId(n_hosts - 1 - i), EntryPortId(n_hosts - 2 - i)] {
            if let Some(r) = shortest::shortest_path(&topo, ingress, egress, &mut rng) {
                routes.push(r);
            }
        }
        policies.push((ingress, generator.policy(10, i as u64)));
    }
    let instance = Instance::new(topo, routes, policies)?;

    let options = PlacementOptions {
        greedy_warm_start: true,
        ..PlacementOptions::default()
    };
    let placer = RulePlacer::new(options.clone());
    let outcome = placer.place(&instance, Objective::TotalRules)?;
    let placement = outcome.placement.expect("initial configuration feasible");
    println!(
        "initial solve: {} rules in {:?} (full ILP)",
        placement.total_rules(),
        outcome.stats.elapsed
    );

    // --- Update 1: a new tenant joins (restricted sub-problem). ---
    let new_ingress = EntryPortId(n_hosts - 1);
    let new_policy = generator.policy(10, 999);
    let mut new_routes = Vec::new();
    for egress in [EntryPortId(0), EntryPortId(1)] {
        if let Some(r) = shortest::shortest_path(instance.topology(), new_ingress, egress, &mut rng)
        {
            new_routes.push(r);
        }
    }
    let out = incremental::install_policies(
        &instance,
        &placement,
        vec![(new_ingress, new_policy, new_routes)],
        &options,
        Objective::TotalRules,
    )?;
    println!(
        "tenant join: {} in {:?} (sub-problem only)",
        out.status, out.elapsed
    );
    let (instance, placement) = (out.instance, out.placement.expect("tenant fits"));
    verify::verify_placement(&instance, &placement, 32, 9)?;

    // --- Update 2: a routing change for one tenant. ---
    let moved = EntryPortId(0);
    let mut rerouted = Vec::new();
    for egress in [EntryPortId(n_hosts / 2), EntryPortId(n_hosts / 2 + 1)] {
        if let Some(r) = shortest::shortest_path(instance.topology(), moved, egress, &mut rng) {
            rerouted.push(r);
        }
    }
    let out = incremental::reroute_policy(
        &instance,
        &placement,
        moved,
        rerouted,
        &options,
        Objective::TotalRules,
    )?;
    println!("route change: {} in {:?}", out.status, out.elapsed);
    let (instance, placement) = (out.instance, out.placement.expect("reroute fits"));
    verify::verify_placement(&instance, &placement, 32, 10)?;

    // --- Update 3: an urgent blacklist rule via the greedy heuristic. ---
    let urgent = Rule::new(Ternary::parse("1111111100000000")?, Action::Drop, 0);
    let out = incremental::add_rule_greedy(&instance, &placement, moved, urgent)?;
    println!(
        "urgent rule: {} in {:?} (greedy, no solver)",
        out.status, out.elapsed
    );
    let placement = out.placement.expect("one rule fits");
    verify::verify_placement(&out.instance, &placement, 32, 11)?;
    println!("all incremental updates verified");
    Ok(())
}

//! Quickstart: the paper's Figure 3 worked example.
//!
//! One ingress `l1` with a three-rule policy; packets route to `l2` via
//! `s1,s2,s3` and to `l3` via `s1,s2,s4,s5`. The optimizer places the
//! rules within per-switch capacity, the tables are emitted, and the
//! golden-model verifier replays packets to prove the deployment matches
//! the policy.
//!
//! Run with: `cargo run --example quickstart`

use flowplace::core::{tables, verify};
use flowplace::prelude::*;
use flowplace::topo::TopologyBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 3 topology: s1-s2-s3 and s2-s4-s5 branches.
    let mut b = TopologyBuilder::new();
    let s: Vec<SwitchId> = (1..=5).map(|i| b.add_switch(format!("s{i}"), 2)).collect();
    b.add_link(s[0], s[1])?;
    b.add_link(s[1], s[2])?;
    b.add_link(s[1], s[3])?;
    b.add_link(s[3], s[4])?;
    let l1 = b.add_entry_port("l1", s[0])?;
    let l2 = b.add_entry_port("l2", s[2])?;
    let l3 = b.add_entry_port("l3", s[4])?;
    let topo = b.build();

    let mut routes = RouteSet::new();
    routes.push(Route::new(l1, l2, vec![s[0], s[1], s[2]]));
    routes.push(Route::new(l1, l3, vec![s[0], s[1], s[3], s[4]]));

    // The policy Q1 attached to ingress l1 (priorities: top rule wins).
    let policy = Policy::from_ordered(vec![
        (Ternary::parse("1100")?, Action::Permit), // r_{1,1}
        (Ternary::parse("11**")?, Action::Drop),   // r_{1,2}
        (Ternary::parse("0***")?, Action::Drop),   // r_{1,3}
    ])?;

    let instance = Instance::new(topo, routes, vec![(l1, policy)])?;
    println!("{instance}");

    let placer = RulePlacer::new(PlacementOptions::default());
    let outcome = placer.place(&instance, Objective::TotalRules)?;
    println!(
        "solve: {} in {:?} ({} vars, {} rows, {} nodes)",
        outcome.status,
        outcome.stats.elapsed,
        outcome.stats.variables,
        outcome.stats.constraints,
        outcome.stats.nodes
    );
    let placement = outcome.placement.expect("Figure 3 is feasible");
    println!(
        "total rules installed: {} (policies hold {})",
        placement.total_rules(),
        instance.total_policy_rules()
    );
    for ((ingress, rule), switches) in placement.iter() {
        let names: Vec<String> = switches
            .iter()
            .map(|s| instance.topology().switch(*s).name.clone())
            .collect();
        println!("  {ingress} {rule} -> {}", names.join(", "));
    }

    // Emit the concrete per-switch TCAM tables.
    let tables = tables::emit_tables(&instance, &placement)?;
    for (i, t) in tables.iter().enumerate() {
        if !t.is_empty() {
            println!("table of {}:", instance.topology().switch(SwitchId(i)).name);
            print!("{t}");
        }
    }

    // Golden-model check: the deployment behaves exactly like the policy.
    verify::verify_placement(&instance, &placement, 256, 42)?;
    println!("verification passed: deployment matches the policy on every path");
    Ok(())
}

#!/usr/bin/env bash
# Library sources must not print.
#
# All output from library crates goes through flowplace-obs (spans +
# metrics on a deterministic virtual clock) or a caller-provided Write
# sink (e.g. the bench harness's report writer); a raw print macro in a
# library bypasses both, is invisible to the canonical telemetry dumps,
# and can corrupt machine-readable stdout. Binaries own stdout and are
# exempt: src/bin/ and crates/*/src/bin/.
set -euo pipefail
cd "$(dirname "$0")/.."

matches=$(grep -RnE '\be?print(ln)?!' crates/*/src src/lib.rs \
    | grep -vE '^crates/[^/]+/src/bin/' \
    || true)

if [ -n "$matches" ]; then
    echo "FAIL: raw print macros in library sources:" >&2
    echo "$matches" >&2
    echo "Route the output through flowplace-obs or a Write sink instead." >&2
    exit 1
fi
echo "no raw print macros in library sources"

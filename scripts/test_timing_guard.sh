#!/usr/bin/env bash
# Tier-1 test timing guard.
#
# Runs the tier-1 test suite (root-package tests against the release
# build, same command as `make test`) under a wall-clock budget of 2x
# the recorded baseline in scripts/test_timing_baseline.txt. A quietly
# 10x-slower suite is a regression like any other — usually a solver
# path that lost a bound or a test that grew a hidden sweep — and this
# guard turns it into a CI failure instead of a slow drift.
#
# To re-record the baseline after an intentional change, run the suite a
# few times on the reference machine and put a value with comfortable
# headroom (CI VMs are slower than dev boxes) into the baseline file.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline_file="scripts/test_timing_baseline.txt"
baseline=$(grep -Ev '^\s*(#|$)' "$baseline_file" | head -n 1 | tr -d '[:space:]')
if ! [[ "$baseline" =~ ^[0-9]+$ ]] || [ "$baseline" -eq 0 ]; then
    echo "error: $baseline_file must contain a positive integer number of seconds" >&2
    exit 2
fi
limit=$((baseline * 2))

start=$(date +%s)
cargo test -q --offline
end=$(date +%s)
elapsed=$((end - start))

echo "tier-1 test wall time: ${elapsed}s (recorded baseline ${baseline}s, limit ${limit}s)"
if [ "$elapsed" -gt "$limit" ]; then
    echo "FAIL: tier-1 tests took ${elapsed}s, exceeding 2x the recorded baseline of ${baseline}s." >&2
    echo "If the slowdown is intentional, re-record $baseline_file (see header comment)." >&2
    exit 1
fi

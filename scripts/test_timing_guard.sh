#!/usr/bin/env bash
# Tier-1 test timing guard.
#
# Runs the tier-1 test suite (root-package tests against the release
# build, same targets as `make test`) under a wall-clock budget of 2x
# the recorded baseline in scripts/test_timing_baseline.txt. A quietly
# 10x-slower suite is a regression like any other — usually a solver
# path that lost a bound or a test that grew a hidden sweep — and this
# guard turns it into a CI failure instead of a slow drift.
#
# Each test target (unit tests, every tests/*.rs integration binary,
# doctests) is timed separately so a budget overrun names the offender
# instead of leaving it to a bisect.
#
# To re-record the baseline after an intentional change, run the suite a
# few times on the reference machine and put a value with comfortable
# headroom (CI VMs are slower than dev boxes) into the baseline file.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline_file="scripts/test_timing_baseline.txt"
baseline=$(grep -Ev '^\s*(#|$)' "$baseline_file" | head -n 1 | tr -d '[:space:]')
if ! [[ "$baseline" =~ ^[0-9]+$ ]] || [ "$baseline" -eq 0 ]; then
    echo "error: $baseline_file must contain a positive integer number of seconds" >&2
    exit 2
fi
limit=$((baseline * 2))

total_ms=0
worst=""
worst_ms=0

run_target() {
    local label="$1"
    shift
    local t0 t1 ms
    t0=$(date +%s%N)
    cargo test -q --offline "$@" >/dev/null
    t1=$(date +%s%N)
    ms=$(((t1 - t0) / 1000000))
    total_ms=$((total_ms + ms))
    printf '  %-28s %7d ms\n' "$label" "$ms"
    if [ "$ms" -gt "$worst_ms" ]; then
        worst_ms=$ms
        worst="$label"
    fi
}

echo "tier-1 test targets:"
run_target "unit (lib + bins)" --lib --bins
for f in tests/*.rs; do
    t=$(basename "$f" .rs)
    run_target "tests/$t" --test "$t"
done
run_target "doctests" --doc

elapsed=$(((total_ms + 999) / 1000))
echo "tier-1 test wall time: ${elapsed}s (recorded baseline ${baseline}s, limit ${limit}s)"
echo "slowest target: $worst (${worst_ms} ms)"
if [ "$elapsed" -gt "$limit" ]; then
    echo "FAIL: tier-1 tests took ${elapsed}s, exceeding 2x the recorded baseline of ${baseline}s." >&2
    echo "Slowest target: $worst at ${worst_ms} ms — start the hunt there." >&2
    echo "If the slowdown is intentional, re-record $baseline_file (see header comment)." >&2
    exit 1
fi
